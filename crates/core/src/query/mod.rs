//! The query layer: one serializable description of every Monte-Carlo
//! estimate, one executor, one mergeable result.
//!
//! The paper's headline objects — cover, hitting, meeting, and pursuit
//! times, and the speed-up ratios between them — are all Monte-Carlo
//! estimates, but they historically entered the crate through seven
//! differently-shaped functions with three incompatible result structs.
//! This module replaces that surface with three values:
//!
//! * [`Query`] — a typed, serializable description of *what* to estimate
//!   (`Cover`, `PartialCover`, `Hitting`, `HMax`, `Meeting`, `Pursuit`,
//!   `SpeedupLadder`).
//! * [`Session`] — the one executor: [`Session::run`] drives the
//!   [`Engine`] through `mrw_par`'s deterministic fan-out for any query,
//!   optionally restricted to a [`Shard`] of the trial-index range.
//! * [`Report`] — the one result: per-group **exact sufficient
//!   statistics** ([`IntMoments`]) rather than floating summaries, so
//!   [`Report::merge`] is lossless, associative, and commutative.
//!
//! ## The shard protocol
//!
//! A trial is a pure function of `(graph, seed, index)` — per-trial RNG
//! streams are derived by counter, never by thread. A shard is therefore
//! just an index range: shard `i/s` of an `N`-trial budget runs trials
//! `⌊iN/s⌋ .. ⌊(i+1)N/s⌋`. Because group statistics are exact integer
//! sums, merging any partition of the index range reproduces the
//! single-process report **byte-for-byte** (the CI shard smoke step
//! `diff`s the rendered JSON). Adaptive (precision-ruled) budgets shard
//! over the rule's hard cap — each shard runs its fixed slice — and the
//! sequential rule is re-evaluated on the *merged* statistics, certifying
//! the achieved half-width after the fact (see [`Report::certified`]),
//! exactly like on-the-fly evaluation over a stream of mergeable partial
//! results.
//!
//! ## Determinism contract
//!
//! For a fixed `(graph, query, budget-sans-threads)`:
//!
//! * every group's sufficient statistics are identical across thread
//!   counts, shard partitions, and machines;
//! * derived floats (mean, half-width) are pure functions of those
//!   integers, hence equally stable;
//! * an adaptive run's consumed trial count depends only on the rule and
//!   the per-index samples (waves are evaluated on index-ordered
//!   prefixes).
//!
//! The worker-thread count is deliberately *excluded* from the serialized
//! form: it affects wall-clock only.
//!
//! ```
//! use mrw_core::query::{Budget, Query, Report, Session, Shard};
//! use mrw_graph::generators;
//!
//! let g = generators::cycle(32);
//! let q = Query::Cover { k: 4, starts: vec![0] };
//! let budget = Budget { trials: 64, seed: 9, ..Budget::default() };
//!
//! // One process:
//! let whole = Session::new(budget.clone()).run(&g, &q);
//! // Two shards, merged:
//! let a = Session::new(budget.clone()).with_shard(Shard::new(0, 2)).run(&g, &q);
//! let b = Session::new(budget).with_shard(Shard::new(1, 2)).run(&g, &q);
//! let merged = Report::merge(&a, &b).unwrap();
//! assert_eq!(merged, whole);                      // exact, not approximate
//! assert_eq!(merged.to_json(), whole.to_json()); // byte-identical
//! ```

pub mod checkpoint;
pub mod json;
pub mod ledger;

pub use checkpoint::{spec_hash, Checkpoint};
pub use ledger::{Ledger, LedgerGroup};

use std::ops::Range;

use mrw_graph::{Graph, GraphBackend, ImplicitGraph};
use mrw_par::{par_map_chunks_with, par_map_with, SeedSequence};
use mrw_stats::ci::{normal_ci, ConfidenceInterval};
use mrw_stats::precision::PrecisionTarget;
use mrw_stats::{IntMoments, Precision, SequentialCi, Summary, Trials};

use crate::engine::{BatchMode, Engine, EngineArena, FullCover, SimpleStep};
use crate::estimator::EstimatorConfig;
use crate::hitting_mc::{hmax_candidates, hmax_mc_cap, HitEstimate, HmaxEstimate};
use crate::kwalk::KWalkMode;
use crate::meeting::{meeting_rounds, pursuit_rounds, CatchEstimate, PreyStrategy};
use crate::partial::{fraction_target, kwalk_partial_cover_rounds, PartialCoverPoint};
use crate::process::WalkProcess;
use crate::walk::{steps_to_hit, walk_rng};

use json::Value;

/// Common resource knobs shared by every estimate: trial budget, master
/// seed, worker threads, engine-path selection, and the optional adaptive
/// stopping rule. (Re-exported as `experiments::Budget`, its historical
/// home.)
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Monte-Carlo trials per estimate (the fixed count — or, when
    /// [`precision`](Budget::precision) is set, ignored in favor of the
    /// rule's own floor and cap).
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads. Never serialized and never part of a merge key:
    /// results are bit-identical across thread counts.
    pub threads: usize,
    /// Engine path selection (`--batch` / `--no-batch`; default: batch
    /// round-synchronous runs of `k ≥ 64` walks).
    pub batch: BatchMode,
    /// When set (`--precision` / `--rel-precision` on the CLI), estimators
    /// sample adaptively until this sequential rule fires instead of
    /// running the fixed `trials` count.
    pub precision: Option<Precision>,
    /// k-walk stepping discipline.
    pub mode: KWalkMode,
    /// Confidence level for reported intervals when the budget is fixed;
    /// an adaptive budget reports at its rule's own confidence (see
    /// [`effective_confidence`](Budget::effective_confidence)).
    pub confidence: f64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            trials: 64,
            seed: 0x5EED,
            threads: mrw_par::available_threads(),
            batch: BatchMode::Auto,
            precision: None,
            mode: KWalkMode::RoundSynchronous,
            confidence: 0.95,
        }
    }
}

impl Budget {
    /// A CI-friendly budget (fewer trials).
    pub fn quick() -> Self {
        Budget {
            trials: 24,
            ..Default::default()
        }
    }

    /// The trial budget this configuration describes: adaptive when a
    /// precision rule is set, the fixed count otherwise.
    pub fn trials_budget(&self) -> Trials {
        match self.precision {
            Some(rule) => Trials::Adaptive(rule),
            None => Trials::Fixed(self.trials),
        }
    }

    /// The confidence level reported intervals actually use: the adaptive
    /// rule's own level when one is set (so the reported half-width is the
    /// one the stopping rule certified), the plain
    /// [`confidence`](Budget::confidence) otherwise.
    pub fn effective_confidence(&self) -> f64 {
        self.precision.map_or(self.confidence, |r| r.confidence)
    }

    /// Builds the estimator config for this budget.
    pub fn estimator(&self) -> EstimatorConfig {
        let mut cfg = EstimatorConfig::new(self.trials)
            .with_trials(self.trials_budget())
            .with_seed(self.seed)
            .with_threads(self.threads)
            .with_batch(self.batch)
            .with_mode(self.mode);
        cfg.ci_level = self.effective_confidence();
        cfg
    }

    /// The inverse of [`estimator`](Budget::estimator): the budget an
    /// [`EstimatorConfig`] describes (how the deprecated typed entry
    /// points translate themselves into [`Session`] runs).
    pub fn from_estimator(cfg: &EstimatorConfig) -> Budget {
        let (trials, precision) = match cfg.trials {
            Trials::Fixed(n) => (n, None),
            Trials::Adaptive(rule) => (rule.max_trials, Some(rule)),
        };
        Budget {
            trials,
            seed: cfg.seed,
            threads: cfg.threads,
            batch: cfg.batch,
            precision,
            mode: cfg.mode,
            confidence: cfg.ci_level,
        }
    }

    /// Whether two budgets describe the same experiment (everything but
    /// the thread count, which only affects wall-clock).
    pub fn same_experiment(&self, other: &Budget) -> bool {
        self.trials_budget() == other.trials_budget()
            && self.seed == other.seed
            && self.batch == other.batch
            && self.mode == other.mode
            && self.effective_confidence() == other.effective_confidence()
    }
}

/// One contiguous slice `index/of` of a trial-index range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index.
    pub index: usize,
    /// Total shard count.
    pub of: usize,
}

impl Shard {
    /// Shard `index` of `of`.
    ///
    /// # Panics
    /// If `of == 0` or `index >= of`.
    pub fn new(index: usize, of: usize) -> Shard {
        assert!(of >= 1, "shard count must be >= 1");
        assert!(index < of, "shard index {index} out of range 0..{of}");
        Shard { index, of }
    }

    /// Parses the CLI form `i/s`.
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (i, s) = text
            .split_once('/')
            .ok_or_else(|| format!("bad shard '{text}' (expected i/s, e.g. 0/2)"))?;
        let index: usize = i.parse().map_err(|_| format!("bad shard index '{i}'"))?;
        let of: usize = s.parse().map_err(|_| format!("bad shard count '{s}'"))?;
        if of == 0 || index >= of {
            return Err(format!("shard {index}/{of} out of range"));
        }
        Ok(Shard { index, of })
    }

    /// This shard's slice of an `n`-trial index range (balanced contiguous
    /// split: `⌊i·n/of⌋ .. ⌊(i+1)·n/of⌋`).
    pub fn slice(&self, n: usize) -> Range<usize> {
        (self.index * n / self.of)..((self.index + 1) * n / self.of)
    }
}

/// How a trial budget splits into disjoint, non-empty child work ranges —
/// the plan `mrw fanout` dispatches to its worker processes.
///
/// The requested shard count is clamped to the trial total, so **every
/// planned range is non-empty**: a worker never produces a report with
/// degenerate coverage, and the union of all planned ranges is exactly
/// `[0, total)`.
///
/// ```
/// use mrw_core::query::ShardPlan;
///
/// let plan = ShardPlan::new(10, 4);
/// let ranges: Vec<_> = plan.ranges().collect();
/// assert_eq!(ranges, vec![0..2, 2..5, 5..7, 7..10]);
/// // More shards than trials: clamped, never empty.
/// assert_eq!(ShardPlan::new(3, 8).count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    total: usize,
    count: usize,
}

impl ShardPlan {
    /// Plans `requested` shards over a `total`-trial budget, clamping the
    /// count to `[1, total]` so no shard is empty.
    ///
    /// # Panics
    /// If `total == 0` (a budget needs at least one trial).
    pub fn new(total: usize, requested: usize) -> ShardPlan {
        assert!(total >= 1, "cannot plan shards over an empty trial budget");
        ShardPlan {
            total,
            count: requested.clamp(1, total),
        }
    }

    /// Number of planned shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The trial budget being split.
    pub fn total_trials(&self) -> usize {
        self.total
    }

    /// Shard `i`'s trial range (the same balanced split as
    /// [`Shard::slice`], so `mrw shard --shard i/s` and `--range lo..hi`
    /// describe identical work).
    ///
    /// # Panics
    /// If `i >= count`.
    pub fn range(&self, i: usize) -> Range<usize> {
        Shard::new(i, self.count).slice(self.total)
    }

    /// All planned ranges in index order (a partition of `[0, total)`).
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.count).map(|i| self.range(i))
    }

    /// Splits an arbitrary sub-range into at most `parts` non-empty
    /// balanced pieces — how an adaptive fan-out wave `[c, c + w)` is
    /// spread over the worker pool.
    ///
    /// # Panics
    /// If the range is empty or `parts == 0`.
    pub fn split(range: Range<usize>, parts: usize) -> Vec<Range<usize>> {
        assert!(!range.is_empty(), "cannot split an empty range");
        assert!(parts >= 1, "need at least one part");
        let len = range.len();
        let sub = ShardPlan::new(len, parts);
        sub.ranges()
            .map(|r| (range.start + r.start)..(range.start + r.end))
            .collect()
    }
}

/// How a [`GraphSpec`] materializes its graph: explicit CSR arrays, the
/// O(1)-state arithmetic backend, or a size-based automatic choice
/// (`--backend` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// CSR when the arrays are small, implicit once the estimated CSR
    /// footprint passes [`AUTO_IMPLICIT_BYTES`] (structured families
    /// only; families without an implicit twin always build CSR).
    #[default]
    Auto,
    /// Always materialize the CSR arrays ([`GraphSpec::resolve`] errors
    /// above [`MAX_CSR_BYTES`]).
    Csr,
    /// Always use the arithmetic backend (errors on families without
    /// closed-form neighborhoods).
    Implicit,
}

/// The `--backend` CLI names for [`BackendChoice`].
pub fn backend_to_str(backend: BackendChoice) -> &'static str {
    match backend {
        BackendChoice::Auto => "auto",
        BackendChoice::Csr => "csr",
        BackendChoice::Implicit => "implicit",
    }
}

/// Parses a `--backend` name.
pub fn backend_from_str(s: &str) -> Result<BackendChoice, String> {
    match s {
        "auto" => Ok(BackendChoice::Auto),
        "csr" => Ok(BackendChoice::Csr),
        "implicit" => Ok(BackendChoice::Implicit),
        other => Err(format!("unknown backend '{other}' (auto | csr | implicit)")),
    }
}

/// Estimated CSR footprint above which [`GraphSpec::resolve`] refuses to
/// materialize the arrays (≈1.5 GiB — offsets are 8 bytes per vertex plus
/// 4 bytes per edge endpoint). Structured families get a pointer to
/// `--backend implicit` instead of an allocation failure.
pub const MAX_CSR_BYTES: u128 = 3 << 29; // 1.5 GiB

/// Estimated CSR footprint above which [`BackendChoice::Auto`] switches a
/// structured family to the implicit backend (64 MiB): big enough that
/// every historical CLI invocation keeps its CSR backend (and the exact
/// report bytes it always produced), small enough that nobody pays
/// hundreds of megabytes for arrays a formula replaces.
pub const AUTO_IMPLICIT_BYTES: u128 = 64 << 20;

/// A resolved graph: either backend behind one enum, so the CLI can
/// thread whatever [`GraphSpec::resolve`] picked through the generic
/// [`Session::run`] without a trait object. Implements [`GraphBackend`]
/// by two-variant static dispatch — the engine's batched paths hoist the
/// [`csr`](GraphBackend::csr) probe out of their inner loops, so the
/// per-step cost is one predicted branch on the scalar path only.
#[derive(Debug, Clone)]
pub enum AnyGraph {
    /// Materialized CSR arrays.
    Csr(Graph),
    /// O(1)-state arithmetic neighborhoods.
    Implicit(ImplicitGraph),
}

macro_rules! any_graph_delegate {
    ($self:ident, $g:ident => $e:expr) => {
        match $self {
            AnyGraph::Csr($g) => $e,
            AnyGraph::Implicit($g) => $e,
        }
    };
}

impl GraphBackend for AnyGraph {
    #[inline]
    fn n(&self) -> usize {
        any_graph_delegate!(self, g => g.n())
    }

    #[inline]
    fn m(&self) -> usize {
        any_graph_delegate!(self, g => g.m())
    }

    fn name(&self) -> &str {
        any_graph_delegate!(self, g => GraphBackend::name(g))
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        any_graph_delegate!(self, g => g.degree(v))
    }

    #[inline]
    fn neighbor(&self, v: u32, i: usize) -> u32 {
        any_graph_delegate!(self, g => g.neighbor(v, i))
    }

    #[inline]
    fn regular_degree(&self) -> Option<usize> {
        any_graph_delegate!(self, g => g.regular_degree())
    }

    #[inline]
    fn fill_row(&self, v: u32, row: &mut [u32]) {
        any_graph_delegate!(self, g => g.fill_row(v, row))
    }

    #[inline]
    fn for_each_neighbor(&self, v: u32, f: impl FnMut(u32)) {
        any_graph_delegate!(self, g => g.for_each_neighbor(v, f))
    }

    #[inline]
    fn csr(&self) -> Option<&Graph> {
        any_graph_delegate!(self, g => g.csr())
    }

    fn to_csr(&self) -> Graph {
        any_graph_delegate!(self, g => g.to_csr())
    }

    fn is_connected(&self) -> bool {
        any_graph_delegate!(self, g => g.is_connected())
    }

    fn memory_bytes(&self) -> usize {
        any_graph_delegate!(self, g => g.memory_bytes())
    }
}

/// A buildable description of a graph-family instance — how query spec
/// files and shard workers agree on the graph without shipping an edge
/// list. The families match the `mrw estimate` CLI verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Family name: `cycle | path | torus | hypercube | clique |
    /// clique-loops | barbell | circulant`.
    pub family: String,
    /// The family's natural size parameter: vertices for most, the side
    /// for `torus`, the *dimension* (1..=30) for `hypercube`.
    pub n: usize,
    /// Chord lengths for `circulant` (vertex `i` adjacent to `i ± s`);
    /// must be empty for every other family.
    pub jumps: Vec<usize>,
    /// Which backend [`resolve`](GraphSpec::resolve) materializes.
    pub backend: BackendChoice,
}

impl GraphSpec {
    /// A spec for `family` at size `n` with the default (automatic)
    /// backend and no jumps.
    pub fn new(family: impl Into<String>, n: usize) -> GraphSpec {
        GraphSpec {
            family: family.into(),
            n,
            jumps: Vec::new(),
            backend: BackendChoice::Auto,
        }
    }

    /// Checks circulant jump lists the way the generator would, but as an
    /// `Err` instead of a panic (spec files are untrusted input).
    fn validate_jumps(&self) -> Result<(), String> {
        if self.family != "circulant" {
            return if self.jumps.is_empty() {
                Ok(())
            } else {
                Err(format!("family '{}' takes no jumps", self.family))
            };
        }
        let n = self.n;
        if n < 3 {
            return Err(format!("circulant needs n ≥ 3, got {n}"));
        }
        if self.jumps.is_empty() {
            return Err("circulant needs at least one jump".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for &s in &self.jumps {
            if s == 0 || s >= n {
                return Err(format!("jump {s} out of range 1..{n}"));
            }
            if !seen.insert(s.min(n - s)) {
                return Err(format!(
                    "jump {s} duplicates another jump modulo ±-symmetry"
                ));
            }
        }
        Ok(())
    }

    /// Builds the described graph as materialized CSR arrays (the
    /// historical path; [`resolve`](GraphSpec::resolve) adds the backend
    /// choice and the memory guard on top).
    pub fn build(&self) -> Result<Graph, String> {
        use mrw_graph::generators;
        self.validate_jumps()?;
        let n = self.n;
        Ok(match self.family.as_str() {
            "cycle" => generators::cycle(n),
            "path" => generators::path(n),
            "torus" => generators::torus_2d(n),
            "hypercube" => {
                if n == 0 || n >= 31 {
                    return Err(format!(
                        "n = {n} is the hypercube *dimension* and must be in 1..=30"
                    ));
                }
                generators::hypercube(n as u32)
            }
            "clique" => generators::complete(n),
            "clique-loops" => generators::complete_with_loops(n),
            "barbell" => generators::barbell(n),
            "circulant" => generators::circulant(n, &self.jumps),
            other => {
                return Err(format!(
                    "unknown family '{other}' (cycle | path | torus | hypercube | clique | \
                     clique-loops | barbell | circulant)"
                ))
            }
        })
    }

    /// Whether the family has a closed-form implicit twin.
    fn has_implicit(&self) -> bool {
        matches!(
            self.family.as_str(),
            "cycle" | "torus" | "hypercube" | "circulant"
        )
    }

    /// Builds the implicit backend, validating every constructor
    /// precondition as an `Err` first (the constructors assert).
    fn build_implicit(&self) -> Result<ImplicitGraph, String> {
        let n = self.n;
        let u32_max = u32::MAX as usize;
        Ok(match self.family.as_str() {
            "cycle" => {
                if n < 3 || n > u32_max {
                    return Err(format!("implicit cycle needs 3 ≤ n ≤ {u32_max}, got {n}"));
                }
                ImplicitGraph::cycle(n)
            }
            "torus" => {
                if !(2..=65_535).contains(&n) {
                    return Err(format!(
                        "implicit torus needs side in 2..=65535 (n = side² ≤ u32::MAX), got {n}"
                    ));
                }
                ImplicitGraph::torus_2d(n)
            }
            "hypercube" => {
                if n == 0 || n >= 31 {
                    return Err(format!(
                        "n = {n} is the hypercube *dimension* and must be in 1..=30"
                    ));
                }
                ImplicitGraph::hypercube(n as u32)
            }
            "circulant" => {
                self.validate_jumps()?;
                if n > u32_max {
                    return Err(format!("implicit circulant needs n ≤ {u32_max}, got {n}"));
                }
                let degree: usize = self
                    .jumps
                    .iter()
                    .map(|&s| if 2 * s == n { 1 } else { 2 })
                    .sum();
                if degree > mrw_graph::MAX_IMPLICIT_DEGREE {
                    return Err(format!(
                        "implicit circulant degree {degree} exceeds the backend limit {}",
                        mrw_graph::MAX_IMPLICIT_DEGREE
                    ));
                }
                ImplicitGraph::circulant(n, &self.jumps)
            }
            other => {
                return Err(format!(
                    "family '{other}' has no implicit backend (cycle | torus | hypercube | \
                     circulant)"
                ))
            }
        })
    }

    /// Estimated CSR footprint in bytes (`(n+1)·8 + Σδ·4`), computed from
    /// the family's closed-form degree sum *without* building anything —
    /// the number the memory guard and the auto-switch compare.
    pub fn csr_bytes_estimate(&self) -> u128 {
        let n = self.n as u128;
        let (verts, degree_sum): (u128, u128) = match self.family.as_str() {
            "cycle" => (n, 2 * n),
            "path" => (n, 2 * n.saturating_sub(1)),
            "torus" => (n * n, if n == 2 { 8 } else { 4 * n * n }),
            "hypercube" => {
                let v = 1u128 << self.n.min(63);
                (v, n * v)
            }
            "clique" => (n, n * n.saturating_sub(1)),
            "clique-loops" => (n, n * n),
            "barbell" => {
                let m = n.saturating_sub(1) / 2;
                (n, 2 * m * m.saturating_sub(1) + 4)
            }
            "circulant" => (n, 2 * n * self.jumps.len() as u128),
            _ => (n, 2 * n),
        };
        (verts + 1) * 8 + degree_sum * 4
    }

    /// Materializes the graph under the spec's [`BackendChoice`]:
    ///
    /// * `csr` — build the arrays, but refuse (with a pointer to
    ///   `--backend implicit` where one exists) once the estimated
    ///   footprint passes [`MAX_CSR_BYTES`];
    /// * `implicit` — the arithmetic backend, or an error for families
    ///   without closed-form neighborhoods;
    /// * `auto` — implicit for structured families whose CSR estimate
    ///   passes [`AUTO_IMPLICIT_BYTES`], CSR (with the same hard guard)
    ///   otherwise.
    pub fn resolve(&self) -> Result<AnyGraph, String> {
        let estimate = self.csr_bytes_estimate();
        let csr_guard = |spec: &GraphSpec| -> Result<AnyGraph, String> {
            if estimate > MAX_CSR_BYTES {
                let hint = if spec.has_implicit() {
                    "re-run with --backend implicit (O(1) state at any size)"
                } else {
                    "this family has no implicit backend — reduce n"
                };
                return Err(format!(
                    "family '{}' at n = {} needs ≈{} MiB of CSR arrays \
                     (limit {} MiB); {hint}",
                    spec.family,
                    spec.n,
                    estimate >> 20,
                    MAX_CSR_BYTES >> 20,
                ));
            }
            spec.build().map(AnyGraph::Csr)
        };
        match self.backend {
            BackendChoice::Csr => csr_guard(self),
            BackendChoice::Implicit => self.build_implicit().map(AnyGraph::Implicit),
            BackendChoice::Auto => {
                if self.has_implicit() && estimate > AUTO_IMPLICIT_BYTES {
                    self.build_implicit().map(AnyGraph::Implicit)
                } else {
                    csr_guard(self)
                }
            }
        }
    }

    /// The backend [`resolve`](GraphSpec::resolve) would materialize,
    /// predicted from the closed-form size estimate without building
    /// anything — `Auto` collapses to the concrete choice. This is the
    /// graph-cache identity `mrw serve` keys on: two specs with equal
    /// family/size parameters and equal resolved backends share one
    /// resident graph.
    pub fn resolved_backend(&self) -> BackendChoice {
        match self.backend {
            BackendChoice::Auto => {
                if self.has_implicit() && self.csr_bytes_estimate() > AUTO_IMPLICIT_BYTES {
                    BackendChoice::Implicit
                } else {
                    BackendChoice::Csr
                }
            }
            concrete => concrete,
        }
    }

    /// A canonical string identity for the *resolved* graph: family, size
    /// parameter, jump set, and the concrete backend `resolve` picks.
    /// Equal keys build identical graph objects, so a cache may share one
    /// resident instance across them.
    pub fn cache_key(&self) -> String {
        let jumps: Vec<String> = self.jumps.iter().map(|j| j.to_string()).collect();
        format!(
            "{}:{}:[{}]:{}",
            self.family,
            self.n,
            jumps.join(","),
            backend_to_str(self.resolved_backend())
        )
    }
}

/// A typed, serializable description of one Monte-Carlo estimate — the
/// *what*, with the *how much* carried by [`Budget`].
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// k-walk full cover time `C^k` from each listed start (one report
    /// group per start).
    Cover {
        /// Number of parallel walks.
        k: usize,
        /// Start vertices (one group each).
        starts: Vec<u32>,
    },
    /// Partial cover time `C^k_γ` from one start at each listed fraction
    /// (one group per `γ`; independent runs per fraction, unbiased per-γ).
    PartialCover {
        /// Number of parallel walks.
        k: usize,
        /// Start vertex.
        start: u32,
        /// Coverage fractions in `(0, 1]`.
        gammas: Vec<f64>,
    },
    /// Hitting time `h(from, to)` by simulation. Walks that exceed `cap`
    /// steps are *discarded* (reported as censored, excluded from the
    /// moments), so the estimate is biased low unless `cap ≫ h`.
    Hitting {
        /// Source vertex.
        from: u32,
        /// Target vertex.
        to: u32,
        /// Per-walk step cap.
        cap: u64,
    },
    /// Monte-Carlo `h_max` lower bound over deterministic candidate pairs
    /// (BFS-diametral endpoints plus strided far pairs; one group per
    /// pair). For the exact small-graph path see
    /// [`Session::hmax`].
    HMax,
    /// Meeting time of two simultaneous walks (censored games counted at
    /// `cap`). `laziness` selects a lazy walk to break bipartite parity;
    /// `None` is the simple walk.
    Meeting {
        /// First walk's start.
        a: u32,
        /// Second walk's start.
        b: u32,
        /// Hold probability for a lazy walk, `None` for simple.
        laziness: Option<f64>,
        /// Round cap (censoring bound).
        cap: u64,
    },
    /// The §1 hunting game: for each `k` in `ks`, `k` hunters from one
    /// vertex chase a prey (one group per `k`; censored games counted at
    /// `cap`).
    Pursuit {
        /// Hunter-count ladder (one group each).
        ks: Vec<usize>,
        /// Common hunter start vertex.
        hunters: u32,
        /// Prey start vertex.
        prey: u32,
        /// What the prey does each round.
        strategy: PreyStrategy,
        /// Round cap (censoring bound).
        cap: u64,
    },
    /// A speed-up sweep `S^k = C^1/C^k` from one start: a `baseline` group
    /// (`k = 1`, independent seed stream) plus one group per `k` in `ks`.
    SpeedupLadder {
        /// Start vertex.
        start: u32,
        /// Walk counts to probe.
        ks: Vec<usize>,
    },
}

impl Query {
    /// Checks the query against a concrete graph: vertex ranges, walk
    /// counts, fractions, and connectivity (for quantities whose
    /// expectation is infinite on a disconnected graph). [`Session::run`]
    /// panics on exactly these conditions; callers with untrusted input
    /// (spec files) should validate first and surface the error.
    pub fn validate<G: GraphBackend>(&self, g: &G) -> Result<(), String> {
        let n = g.n();
        let vertex = |label: &str, v: u32| {
            if (v as usize) < n {
                Ok(())
            } else {
                Err(format!("{label} {v} out of range (n = {n})"))
            }
        };
        let connected = |what: &str| {
            if g.is_connected() {
                Ok(())
            } else {
                Err(format!("{what} is infinite on a disconnected graph"))
            }
        };
        match self {
            Query::Cover { k, starts } => {
                if *k < 1 {
                    return Err("need at least one walk".into());
                }
                if starts.is_empty() {
                    return Err("need at least one start".into());
                }
                for &s in starts {
                    vertex("start", s)?;
                }
                connected("cover time")
            }
            Query::PartialCover { k, start, gammas } => {
                if *k < 1 {
                    return Err("need at least one walk".into());
                }
                if gammas.is_empty() {
                    return Err("need at least one fraction".into());
                }
                for &gamma in gammas {
                    if !(gamma > 0.0 && gamma <= 1.0) {
                        return Err(format!("fraction {gamma} not in (0,1]"));
                    }
                }
                vertex("start", *start)
            }
            Query::Hitting { from, to, .. } => {
                vertex("from", *from)?;
                vertex("to", *to)?;
                connected("hitting time")
            }
            Query::HMax => connected("h_max"),
            Query::Meeting { a, b, laziness, .. } => {
                vertex("start", *a)?;
                vertex("start", *b)?;
                if let Some(p) = laziness {
                    if !(*p >= 0.0 && *p < 1.0) {
                        return Err(format!("laziness {p} not in [0, 1)"));
                    }
                }
                Ok(())
            }
            Query::Pursuit {
                ks, hunters, prey, ..
            } => {
                if ks.is_empty() {
                    return Err("need at least one hunter count".into());
                }
                if ks.iter().any(|&k| k < 1) {
                    return Err("need at least one hunter per rung".into());
                }
                vertex("hunter start", *hunters)?;
                vertex("prey", *prey)
            }
            Query::SpeedupLadder { start, ks } => {
                if ks.is_empty() {
                    return Err("empty k ladder".into());
                }
                if ks.iter().any(|&k| k < 1) {
                    return Err("k must be ≥ 1".into());
                }
                vertex("start", *start)?;
                connected("cover time")
            }
        }
    }

    /// A short verb-like name for tables and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Cover { .. } => "cover",
            Query::PartialCover { .. } => "partial-cover",
            Query::Hitting { .. } => "hitting",
            Query::HMax => "hmax",
            Query::Meeting { .. } => "meeting",
            Query::Pursuit { .. } => "pursuit",
            Query::SpeedupLadder { .. } => "speedup-ladder",
        }
    }
}

/// One breakdown row of a [`Report`]: a labeled sample with exact
/// sufficient statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Which slice of the query this is (`start=0`, `gamma=0.5`, `k=4`,
    /// `h(0->32)`, `baseline`, …).
    pub label: String,
    /// Trials dispatched for this group (= observations + discarded
    /// censored walks for [`Query::Hitting`]; censored pursuit/meeting
    /// games are *counted at the cap* and included in the moments).
    pub trials: u64,
    /// Exact sufficient statistics of the counted observations.
    pub moments: IntMoments,
    /// Games/walks that hit the cap.
    pub censored: u64,
}

impl Group {
    /// The sample as a [`Summary`] (a pure function of the exact
    /// statistics — identical however the sample was sharded).
    pub fn summary(&self) -> Summary {
        self.moments.summary()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Normal-approximation CI around the mean at `level`.
    pub fn ci(&self, level: f64) -> ConfidenceInterval {
        normal_ci(&self.summary(), level)
    }

    /// Losslessly combines this group's sample with `other`'s (exact
    /// integer sums). The caller owns disjointness: this is the per-group
    /// kernel of [`Report::merge`] (which checks coverage) and of the
    /// serve-layer report cache (whose segment ledger tracks disjoint
    /// trial prefixes itself).
    pub fn merge(&self, other: &Group) -> Group {
        let mut moments = self.moments;
        moments.merge(&other.moments);
        Group {
            label: self.label.clone(),
            trials: self.trials + other.trials,
            moments,
            censored: self.censored + other.censored,
        }
    }
}

/// The graph a report was measured on (name + size; enough to check merge
/// compatibility and label tables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// Generator-assigned name, e.g. `cycle(64)`.
    pub name: String,
    /// Vertex count.
    pub n: usize,
}

/// The set of trial indices a report covers, as sorted, disjoint,
/// half-open `[lo, hi)` ranges. This is what makes [`Report::merge`]
/// *sound*, not just associative: merging rejects overlapping coverage,
/// so the same shard cannot be counted twice, and a merged report only
/// presents itself as the complete run when its coverage really is
/// `[0, N)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage(Vec<(u64, u64)>);

impl Coverage {
    /// The whole `[0, total)` index range.
    pub fn full(total: u64) -> Coverage {
        Coverage(vec![(0, total)])
    }

    /// One shard's slice of an `total`-trial range.
    pub fn of_shard(shard: Shard, total: usize) -> Coverage {
        let r = shard.slice(total);
        Coverage(vec![(r.start as u64, r.end as u64)])
    }

    /// An arbitrary contiguous `[lo, hi)` trial range (the `mrw shard
    /// --range` form `mrw fanout` dispatches).
    ///
    /// # Panics
    /// If the range is empty.
    pub fn of_range(range: Range<usize>) -> Coverage {
        assert!(!range.is_empty(), "empty coverage range");
        Coverage(vec![(range.start as u64, range.end as u64)])
    }

    /// The covered ranges (sorted, disjoint, non-empty unless the whole
    /// coverage is empty).
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.0
    }

    /// Whether this coverage is exactly the whole `[0, total)` range.
    pub fn is_full(&self, total: u64) -> bool {
        self.0 == [(0, total)]
    }

    /// Builds a coverage from raw ranges, validating shape (each
    /// `lo < hi ≤ total`, strictly increasing, disjoint).
    pub fn from_ranges(ranges: Vec<(u64, u64)>, total: u64) -> Result<Coverage, String> {
        if ranges.is_empty() {
            return Err("empty coverage".into());
        }
        let mut prev_hi = 0u64;
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            if lo >= hi || hi > total {
                return Err(format!("bad coverage range [{lo}, {hi}) of {total}"));
            }
            if i > 0 && lo < prev_hi {
                return Err(format!(
                    "coverage ranges overlap or are unsorted at [{lo}, {hi})"
                ));
            }
            prev_hi = hi;
        }
        Ok(Coverage(ranges))
    }

    /// Number of trial indices covered.
    pub fn covered_trials(&self) -> u64 {
        self.0.iter().map(|&(lo, hi)| hi - lo).sum()
    }

    /// The complement within `[0, total)`: which trial ranges are still
    /// missing before this coverage is the complete run. This is the
    /// progress accounting `mrw fanout` reports (and what a retry has to
    /// fill after a worker dies).
    pub fn missing(&self, total: u64) -> Vec<(u64, u64)> {
        let mut gaps = Vec::new();
        let mut cursor = 0u64;
        for &(lo, hi) in &self.0 {
            if cursor < lo {
                gaps.push((cursor, lo));
            }
            cursor = cursor.max(hi);
        }
        if cursor < total {
            gaps.push((cursor, total));
        }
        gaps
    }

    /// The complement restricted to an arbitrary `[lo, hi)` window: which
    /// sub-ranges of the window this coverage does not contain. This is
    /// the wave-relative form of [`missing`](Coverage::missing) — the
    /// resumable fanout driver replans an interrupted adaptive wave by
    /// asking a checkpointed wave report which slices of the wave's
    /// window still have to run.
    pub fn missing_within(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut gaps = Vec::new();
        let mut cursor = lo;
        for &(a, b) in &self.0 {
            if b <= cursor {
                continue;
            }
            if a >= hi {
                break;
            }
            if cursor < a {
                gaps.push((cursor, a.min(hi)));
            }
            cursor = cursor.max(b);
            if cursor >= hi {
                return gaps;
            }
        }
        if cursor < hi {
            gaps.push((cursor, hi));
        }
        gaps
    }

    /// The disjoint union of two coverages (coalescing adjacent ranges).
    /// Fails if any trial index is covered by both — the double-counting
    /// guard behind [`Report::merge`].
    pub fn union(&self, other: &Coverage) -> Result<Coverage, String> {
        let mut all: Vec<(u64, u64)> = self.0.iter().chain(&other.0).copied().collect();
        all.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(all.len());
        for (lo, hi) in all {
            match merged.last_mut() {
                Some((_, prev_hi)) if lo < *prev_hi => {
                    return Err(format!(
                        "overlapping shard coverage: trials [{lo}, {}) are counted twice",
                        hi.min(*prev_hi)
                    ));
                }
                Some((_, prev_hi)) if lo == *prev_hi => *prev_hi = hi,
                _ => merged.push((lo, hi)),
            }
        }
        Ok(Coverage(merged))
    }
}

/// The unified result of [`Session::run`]: the query echoed back, the
/// budget that produced it, and per-group exact statistics. Self-
/// describing (serializes with [`to_json`](Report::to_json)) and
/// losslessly mergeable ([`merge`](Report::merge)).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The measured graph.
    pub graph: GraphInfo,
    /// The query this report answers.
    pub query: Query,
    /// The budget that produced it (threads excluded from serialization
    /// and merge compatibility).
    pub budget: Budget,
    /// The trial-index ranges this report covers. A fresh unsharded run
    /// (and any merge whose pieces add up to the whole budget) covers
    /// `[0, N)`; partial merges carry their exact union so double
    /// counting is impossible.
    pub coverage: Coverage,
    /// Per-start / per-γ / per-k breakdown.
    pub groups: Vec<Group>,
}

impl Report {
    /// The confidence level of reported intervals.
    pub fn confidence(&self) -> f64 {
        self.budget.effective_confidence()
    }

    /// The group with the given label.
    pub fn group(&self, label: &str) -> Option<&Group> {
        self.groups.iter().find(|g| g.label == label)
    }

    /// Point estimate of the report's first group (the only group for
    /// single-quantity queries).
    pub fn mean(&self) -> f64 {
        self.groups[0].mean()
    }

    /// CI half-width of the first group at the report's confidence level.
    pub fn half_width(&self) -> f64 {
        self.groups[0].ci(self.confidence()).half_width()
    }

    /// Half-width relative to the point estimate (first group).
    pub fn relative_half_width(&self) -> f64 {
        self.half_width() / self.mean().abs()
    }

    /// Total trials dispatched across all groups.
    pub fn consumed_trials(&self) -> u64 {
        self.groups.iter().map(|g| g.trials).sum()
    }

    /// The size of the trial-index space the coverage refers to: the
    /// fixed count, or the adaptive rule's hard cap.
    pub fn trial_space(&self) -> u64 {
        self.budget.trials_budget().cap() as u64
    }

    /// Whether this report covers the whole trial range (an unsharded
    /// run, or a merge whose shards add up to the full budget).
    pub fn is_complete(&self) -> bool {
        self.coverage.is_full(self.trial_space())
    }

    /// For adaptive budgets: whether every group's merged sample
    /// satisfies the precision rule — the post-merge certification of the
    /// achieved half-width, via the sequential rule's sufficient-stats
    /// form ([`SequentialCi::from_summary`]). `None` for fixed budgets.
    pub fn certified(&self) -> Option<bool> {
        use mrw_stats::precision::Decision;
        let rule = self.budget.precision?;
        Some(self.groups.iter().all(|g| {
            SequentialCi::from_summary(rule, g.summary()).decision() == Decision::PrecisionReached
        }))
    }

    /// Losslessly merges two shard reports of the same experiment.
    /// Associative and commutative: the group statistics are exact
    /// integer sums, so merging any partition of the trial-index range
    /// reproduces the single-process report bit-for-bit.
    ///
    /// Fails when the reports describe different experiments (graph,
    /// query, seed, trial budget, or group structure disagree) — or when
    /// their coverages overlap (the same shard passed twice, or shards
    /// from incompatible partitions), which would double-count trials.
    pub fn merge(a: &Report, b: &Report) -> Result<Report, String> {
        if a.graph != b.graph {
            return Err(format!(
                "graph mismatch: {} (n={}) vs {} (n={})",
                a.graph.name, a.graph.n, b.graph.name, b.graph.n
            ));
        }
        if a.query != b.query {
            return Err("query mismatch".into());
        }
        if !a.budget.same_experiment(&b.budget) {
            return Err("budget mismatch (seed / trials / mode / batch / confidence)".into());
        }
        if a.groups.len() != b.groups.len()
            || a.groups
                .iter()
                .zip(&b.groups)
                .any(|(ga, gb)| ga.label != gb.label)
        {
            return Err("group structure mismatch".into());
        }
        let coverage = a.coverage.union(&b.coverage)?;
        Ok(Report {
            graph: a.graph.clone(),
            query: a.query.clone(),
            budget: a.budget.clone(),
            coverage,
            groups: a
                .groups
                .iter()
                .zip(&b.groups)
                .map(|(ga, gb)| ga.merge(gb))
                .collect(),
        })
    }

    /// Reinterprets a fixed-budget report inside a larger trial space:
    /// the same sample, now presented as partial coverage of a
    /// `trials`-trial budget. Because a trial is a pure function of
    /// `(seed, group, index)` — never of the budget's total — a complete
    /// `0..n` run restated to `m > n` is exactly the `[0, n)` shard of
    /// the `m`-trial run, so merging it with a fresh `n..m` slice
    /// reproduces the direct `0..m` run byte-for-byte. This is the
    /// cache-extension lemma `mrw serve` leans on: serve a bigger budget
    /// by running only the missing index range.
    ///
    /// Fails for adaptive budgets (their trial space is the rule's cap,
    /// not a free parameter) and when the coverage doesn't fit inside the
    /// new space.
    pub fn restate_trials(&self, trials: usize) -> Result<Report, String> {
        if self.budget.precision.is_some() {
            return Err("cannot restate an adaptive budget's trial space".into());
        }
        if let Some(&(_, hi)) = self.coverage.ranges().last() {
            if hi > trials as u64 {
                return Err(format!(
                    "coverage reaches trial {hi}, past the new {trials}-trial space"
                ));
            }
        }
        Ok(Report {
            budget: Budget {
                trials,
                ..self.budget.clone()
            },
            ..self.clone()
        })
    }

    /// Serializes to the canonical JSON shard-report schema
    /// (`mrw-report-v1`). Equal reports render byte-identically; see the
    /// module docs' determinism contract.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    pub(crate) fn to_value(&self) -> Value {
        let mut fields = vec![
            ("schema", Value::str("mrw-report-v1")),
            (
                "graph",
                Value::obj(vec![
                    ("name", Value::str(&self.graph.name)),
                    ("n", Value::num(self.graph.n)),
                ]),
            ),
            ("query", query_to_value(&self.query)),
            ("budget", budget_to_value(&self.budget)),
            (
                // `null` = the complete run; partial reports carry their
                // exact covered [lo, hi) trial ranges so merges can
                // reject double counting.
                "coverage",
                if self.is_complete() {
                    Value::Null
                } else {
                    Value::Arr(
                        self.coverage
                            .ranges()
                            .iter()
                            .map(|&(lo, hi)| Value::Arr(vec![Value::num(lo), Value::num(hi)]))
                            .collect(),
                    )
                },
            ),
        ];
        if let Some(certified) = self.certified() {
            fields.push(("certified", Value::Bool(certified)));
        }
        let level = self.confidence();
        fields.push((
            "groups",
            Value::Arr(
                self.groups
                    .iter()
                    .map(|g| {
                        Value::obj(vec![
                            ("label", Value::str(&g.label)),
                            ("trials", Value::num(g.trials)),
                            ("count", Value::num(g.moments.count())),
                            ("sum", Value::num(g.moments.sum())),
                            ("sum_sq", Value::num(g.moments.sum_sq())),
                            ("min", g.moments.min().map_or(Value::Null, Value::num)),
                            ("max", g.moments.max().map_or(Value::Null, Value::num)),
                            ("censored", Value::num(g.censored)),
                            ("mean", Value::float(g.mean())),
                            ("half_width", Value::float(g.ci(level).half_width())),
                        ])
                    })
                    .collect(),
            ),
        ));
        Value::obj(fields)
    }

    /// Parses a report from its JSON form. Derived fields (`mean`,
    /// `half_width`, `certified`) are ignored and recomputed from the
    /// exact statistics.
    pub fn from_json(text: &str) -> Result<Report, String> {
        Report::from_value(&json::parse(text)?)
    }

    pub(crate) fn from_value(v: &Value) -> Result<Report, String> {
        if v.req("schema")?.as_str() != Some("mrw-report-v1") {
            return Err("unknown schema (expected mrw-report-v1)".into());
        }
        let graph = v.req("graph")?;
        let graph = GraphInfo {
            name: graph
                .req("name")?
                .as_str()
                .ok_or("graph.name must be a string")?
                .to_string(),
            n: graph
                .req("n")?
                .as_usize()
                .ok_or("graph.n must be an integer")?,
        };
        let query = query_from_value(v.req("query")?)?;
        let budget = budget_from_value(v.req("budget")?)?;
        let total = budget.trials_budget().cap() as u64;
        let coverage = match v.req("coverage")? {
            Value::Null => Coverage::full(total),
            ranges => {
                let ranges = ranges
                    .as_arr()
                    .ok_or("coverage must be null or an array of [lo, hi] pairs")?
                    .iter()
                    .map(|r| {
                        let pair = r.as_arr().filter(|p| p.len() == 2);
                        let pair = pair.ok_or("coverage entries must be [lo, hi] pairs")?;
                        Ok((
                            pair[0].as_u64().ok_or("bad coverage bound")?,
                            pair[1].as_u64().ok_or("bad coverage bound")?,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Coverage::from_ranges(ranges, total)?
            }
        };
        let groups = v
            .req("groups")?
            .as_arr()
            .ok_or("groups must be an array")?
            .iter()
            .map(|g| {
                let count = g
                    .req("count")?
                    .as_u64()
                    .ok_or("group.count must be an integer")?;
                let min = match g.req("min")? {
                    Value::Null => u64::MAX,
                    m => m.as_u64().ok_or("group.min must be an integer")?,
                };
                let max = match g.req("max")? {
                    Value::Null => 0,
                    m => m.as_u64().ok_or("group.max must be an integer")?,
                };
                Ok(Group {
                    label: g
                        .req("label")?
                        .as_str()
                        .ok_or("group.label must be a string")?
                        .to_string(),
                    trials: g
                        .req("trials")?
                        .as_u64()
                        .ok_or("group.trials must be an integer")?,
                    moments: IntMoments::try_from_raw(
                        count,
                        g.req("sum")?
                            .as_u128()
                            .ok_or("group.sum must be an integer")?,
                        g.req("sum_sq")?
                            .as_u128()
                            .ok_or("group.sum_sq must be an integer")?,
                        min,
                        max,
                    )?,
                    censored: g
                        .req("censored")?
                        .as_u64()
                        .ok_or("group.censored must be an integer")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Report {
            graph,
            query,
            budget,
            coverage,
            groups,
        })
    }
}

/// A complete experiment spec — graph + query + budget — as stored in the
/// plain-text files `mrw run` / `mrw shard` consume.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// The graph to build.
    pub graph: GraphSpec,
    /// What to estimate.
    pub query: Query,
    /// How hard to try.
    pub budget: Budget,
}

impl QuerySpec {
    /// Serializes to the canonical spec-file JSON. `jumps` and `backend`
    /// appear only when non-default, so every pre-backend spec file keeps
    /// its exact historical bytes.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    pub(crate) fn to_value(&self) -> Value {
        let mut graph = vec![
            ("family", Value::str(&self.graph.family)),
            ("n", Value::num(self.graph.n)),
        ];
        if !self.graph.jumps.is_empty() {
            graph.push((
                "jumps",
                Value::Arr(self.graph.jumps.iter().map(|&j| Value::num(j)).collect()),
            ));
        }
        if self.graph.backend != BackendChoice::Auto {
            graph.push(("backend", Value::str(backend_to_str(self.graph.backend))));
        }
        Value::obj(vec![
            ("graph", Value::obj(graph)),
            ("query", query_to_value(&self.query)),
            ("budget", budget_to_value(&self.budget)),
        ])
    }

    /// The report-cache identity of this spec: a canonical rendering of
    /// everything that determines per-trial outcomes — graph family,
    /// size, and jumps; the query; and the budget's seed, stepping mode,
    /// and batch discipline — and *nothing* that doesn't. Trial count,
    /// precision rule, confidence, thread count, and backend are all
    /// excluded: trial `i` of a group is a pure function of
    /// `(seed, group, i)`, so two specs with equal keys draw identical
    /// outcome streams and a report cached under one serves the other at
    /// any budget (by running only the missing index ranges).
    pub fn report_key(&self) -> String {
        Value::obj(vec![
            (
                "graph",
                Value::obj(vec![
                    ("family", Value::str(&self.graph.family)),
                    ("n", Value::num(self.graph.n)),
                    (
                        "jumps",
                        Value::Arr(self.graph.jumps.iter().map(|&j| Value::num(j)).collect()),
                    ),
                ]),
            ),
            ("query", query_to_value(&self.query)),
            ("seed", Value::num(self.budget.seed)),
            ("mode", Value::str(mode_to_str(self.budget.mode))),
            ("batch", Value::str(batch_to_str(self.budget.batch))),
        ])
        .render()
    }

    /// Parses a spec file. The `budget` object (and any of its fields)
    /// may be omitted; [`Budget::default`] fills the gaps.
    pub fn from_json(text: &str) -> Result<QuerySpec, String> {
        QuerySpec::from_value(&json::parse(text)?)
    }

    pub(crate) fn from_value(v: &Value) -> Result<QuerySpec, String> {
        let graph = v.req("graph")?;
        let graph = GraphSpec {
            family: graph
                .req("family")?
                .as_str()
                .ok_or("graph.family must be a string")?
                .to_string(),
            n: graph
                .req("n")?
                .as_usize()
                .ok_or("graph.n must be an integer")?,
            jumps: match graph.get("jumps") {
                None => Vec::new(),
                Some(v) => v
                    .as_arr()
                    .ok_or("graph.jumps must be an array")?
                    .iter()
                    .map(|j| j.as_usize().ok_or_else(|| "jump must be an integer".into()))
                    .collect::<Result<Vec<_>, String>>()?,
            },
            backend: match graph.get("backend") {
                None => BackendChoice::Auto,
                Some(v) => backend_from_str(v.as_str().ok_or("graph.backend must be a string")?)?,
            },
        };
        let query = query_from_value(v.req("query")?)?;
        let budget = match v.get("budget") {
            None => Budget::default(),
            Some(b) => budget_from_value(b)?,
        };
        Ok(QuerySpec {
            graph,
            query,
            budget,
        })
    }
}

// ---------------------------------------------------------------------------
// Serialization of the sub-structures.

fn mode_to_str(mode: KWalkMode) -> &'static str {
    match mode {
        KWalkMode::RoundSynchronous => "round-synchronous",
        KWalkMode::Interleaved => "interleaved",
    }
}

fn mode_from_str(s: &str) -> Result<KWalkMode, String> {
    match s {
        "round-synchronous" => Ok(KWalkMode::RoundSynchronous),
        "interleaved" => Ok(KWalkMode::Interleaved),
        other => Err(format!("unknown mode '{other}'")),
    }
}

fn batch_to_str(batch: BatchMode) -> &'static str {
    match batch {
        BatchMode::Auto => "auto",
        BatchMode::Never => "never",
        BatchMode::Always => "always",
    }
}

fn batch_from_str(s: &str) -> Result<BatchMode, String> {
    match s {
        "auto" => Ok(BatchMode::Auto),
        "never" => Ok(BatchMode::Never),
        "always" => Ok(BatchMode::Always),
        other => Err(format!("unknown batch mode '{other}'")),
    }
}

/// The `--prey` CLI names for [`PreyStrategy`].
pub fn prey_to_str(strategy: PreyStrategy) -> &'static str {
    match strategy {
        PreyStrategy::Hide => "stationary",
        PreyStrategy::RandomWalk => "uniform",
        PreyStrategy::Adversarial => "adversarial",
    }
}

/// Parses a `--prey` name.
pub fn prey_from_str(s: &str) -> Result<PreyStrategy, String> {
    match s {
        "stationary" => Ok(PreyStrategy::Hide),
        "uniform" => Ok(PreyStrategy::RandomWalk),
        "adversarial" => Ok(PreyStrategy::Adversarial),
        other => Err(format!(
            "unknown prey strategy '{other}' (stationary | uniform | adversarial)"
        )),
    }
}

fn precision_to_value(rule: &Precision) -> Value {
    let target = match rule.target {
        PrecisionTarget::Absolute(h) => Value::obj(vec![("absolute", Value::float(h))]),
        PrecisionTarget::Relative(r) => Value::obj(vec![("relative", Value::float(r))]),
    };
    Value::obj(vec![
        ("target", target),
        ("confidence", Value::float(rule.confidence)),
        ("min_trials", Value::num(rule.min_trials)),
        ("max_trials", Value::num(rule.max_trials)),
    ])
}

// Untrusted input: every value is range-checked *before* reaching the
// `Precision` constructors, whose assertions would otherwise turn a
// malformed spec/report into a panic instead of an `Err`.
fn precision_from_value(v: &Value) -> Result<Precision, String> {
    let target = v.req("target")?;
    let positive_finite = |what: &str, x: f64| -> Result<f64, String> {
        if x > 0.0 && x.is_finite() {
            Ok(x)
        } else {
            Err(format!("{what} target {x} must be positive and finite"))
        }
    };
    let mut rule = if let Some(h) = target.get("absolute") {
        let h = h.as_f64().ok_or("absolute target must be a number")?;
        Precision::absolute(positive_finite("absolute", h)?)
    } else if let Some(r) = target.get("relative") {
        let r = r.as_f64().ok_or("relative target must be a number")?;
        Precision::relative(positive_finite("relative", r)?)
    } else {
        return Err("precision target needs 'absolute' or 'relative'".into());
    };
    if let Some(c) = v.get("confidence") {
        let c = c.as_f64().ok_or("confidence must be a number")?;
        if !(c > 0.0 && c < 1.0) {
            return Err(format!("confidence {c} not in (0, 1)"));
        }
        rule = rule.with_confidence(c);
    }
    if let Some(m) = v.get("min_trials") {
        rule = rule.with_min_trials(m.as_usize().ok_or("min_trials must be an integer")?);
    }
    if let Some(m) = v.get("max_trials") {
        let m = m.as_usize().ok_or("max_trials must be an integer")?;
        if m < rule.min_trials {
            return Err(format!(
                "max_trials {m} below the minimum-sample floor {}",
                rule.min_trials
            ));
        }
        rule = rule.with_max_trials(m);
    }
    Ok(rule)
}

fn budget_to_value(b: &Budget) -> Value {
    let trials = match b.precision {
        Some(rule) => Value::obj(vec![("adaptive", precision_to_value(&rule))]),
        None => Value::obj(vec![("fixed", Value::num(b.trials))]),
    };
    Value::obj(vec![
        ("trials", trials),
        ("seed", Value::num(b.seed)),
        ("mode", Value::str(mode_to_str(b.mode))),
        ("batch", Value::str(batch_to_str(b.batch))),
        ("confidence", Value::float(b.confidence)),
    ])
}

fn budget_from_value(v: &Value) -> Result<Budget, String> {
    let mut b = Budget::default();
    if let Some(t) = v.get("trials") {
        if let Some(n) = t.as_usize() {
            // Hand-written spec shorthand: "trials": 512.
            b.trials = n;
            b.precision = None;
        } else if let Some(rule) = t.get("adaptive") {
            b.precision = Some(precision_from_value(rule)?);
        } else if let Some(n) = t.get("fixed") {
            b.trials = n.as_usize().ok_or("fixed trials must be an integer")?;
            b.precision = None;
        } else {
            return Err("trials must be an integer, {\"fixed\": n}, or {\"adaptive\": …}".into());
        }
    }
    if let Some(s) = v.get("seed") {
        b.seed = s.as_u64().ok_or("seed must be an integer")?;
    }
    if let Some(m) = v.get("mode") {
        b.mode = mode_from_str(m.as_str().ok_or("mode must be a string")?)?;
    }
    if let Some(m) = v.get("batch") {
        b.batch = batch_from_str(m.as_str().ok_or("batch must be a string")?)?;
    }
    if let Some(c) = v.get("confidence") {
        b.confidence = c.as_f64().ok_or("confidence must be a number")?;
        if !(b.confidence > 0.0 && b.confidence < 1.0) {
            return Err(format!("confidence {} not in (0, 1)", b.confidence));
        }
    }
    Ok(b)
}

fn query_to_value(q: &Query) -> Value {
    match q {
        Query::Cover { k, starts } => Value::obj(vec![
            ("type", Value::str("cover")),
            ("k", Value::num(*k)),
            (
                "starts",
                Value::Arr(starts.iter().map(|&s| Value::num(s)).collect()),
            ),
        ]),
        Query::PartialCover { k, start, gammas } => Value::obj(vec![
            ("type", Value::str("partial-cover")),
            ("k", Value::num(*k)),
            ("start", Value::num(*start)),
            (
                "gammas",
                Value::Arr(gammas.iter().map(|&g| Value::float(g)).collect()),
            ),
        ]),
        Query::Hitting { from, to, cap } => Value::obj(vec![
            ("type", Value::str("hitting")),
            ("from", Value::num(*from)),
            ("to", Value::num(*to)),
            ("cap", Value::num(*cap)),
        ]),
        Query::HMax => Value::obj(vec![("type", Value::str("hmax"))]),
        Query::Meeting {
            a,
            b,
            laziness,
            cap,
        } => Value::obj(vec![
            ("type", Value::str("meeting")),
            ("a", Value::num(*a)),
            ("b", Value::num(*b)),
            ("laziness", laziness.map_or(Value::Null, Value::float)),
            ("cap", Value::num(*cap)),
        ]),
        Query::Pursuit {
            ks,
            hunters,
            prey,
            strategy,
            cap,
        } => Value::obj(vec![
            ("type", Value::str("pursuit")),
            (
                "ks",
                Value::Arr(ks.iter().map(|&k| Value::num(k)).collect()),
            ),
            ("hunters", Value::num(*hunters)),
            ("prey", Value::num(*prey)),
            ("strategy", Value::str(prey_to_str(*strategy))),
            ("cap", Value::num(*cap)),
        ]),
        Query::SpeedupLadder { start, ks } => Value::obj(vec![
            ("type", Value::str("speedup-ladder")),
            ("start", Value::num(*start)),
            (
                "ks",
                Value::Arr(ks.iter().map(|&k| Value::num(k)).collect()),
            ),
        ]),
    }
}

fn query_from_value(v: &Value) -> Result<Query, String> {
    let kind = v
        .req("type")?
        .as_str()
        .ok_or("query.type must be a string")?;
    let u32_field = |key: &str| -> Result<u32, String> {
        v.req(key)?
            .as_u32()
            .ok_or_else(|| format!("{key} must be an integer"))
    };
    let u64_field = |key: &str| -> Result<u64, String> {
        v.req(key)?
            .as_u64()
            .ok_or_else(|| format!("{key} must be an integer"))
    };
    let usize_list = |key: &str| -> Result<Vec<usize>, String> {
        v.req(key)?
            .as_arr()
            .ok_or_else(|| format!("{key} must be an array"))?
            .iter()
            .map(|x| {
                x.as_usize()
                    .ok_or_else(|| format!("{key} entries must be integers"))
            })
            .collect()
    };
    match kind {
        "cover" => Ok(Query::Cover {
            k: v.req("k")?.as_usize().ok_or("k must be an integer")?,
            starts: v
                .req("starts")?
                .as_arr()
                .ok_or("starts must be an array")?
                .iter()
                .map(|s| s.as_u32().ok_or_else(|| "bad start".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "partial-cover" => Ok(Query::PartialCover {
            k: v.req("k")?.as_usize().ok_or("k must be an integer")?,
            start: u32_field("start")?,
            gammas: v
                .req("gammas")?
                .as_arr()
                .ok_or("gammas must be an array")?
                .iter()
                .map(|g| g.as_f64().ok_or_else(|| "bad gamma".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "hitting" => Ok(Query::Hitting {
            from: u32_field("from")?,
            to: u32_field("to")?,
            cap: u64_field("cap")?,
        }),
        "hmax" => Ok(Query::HMax),
        "meeting" => Ok(Query::Meeting {
            a: u32_field("a")?,
            b: u32_field("b")?,
            laziness: match v.req("laziness")? {
                Value::Null => None,
                l => Some(l.as_f64().ok_or("laziness must be a number or null")?),
            },
            cap: u64_field("cap")?,
        }),
        "pursuit" => Ok(Query::Pursuit {
            ks: usize_list("ks")?,
            hunters: u32_field("hunters")?,
            prey: u32_field("prey")?,
            strategy: prey_from_str(
                v.req("strategy")?
                    .as_str()
                    .ok_or("strategy must be a string")?,
            )?,
            cap: u64_field("cap")?,
        }),
        "speedup-ladder" => Ok(Query::SpeedupLadder {
            start: u32_field("start")?,
            ks: usize_list("ks")?,
        }),
        other => Err(format!("unknown query type '{other}'")),
    }
}

// ---------------------------------------------------------------------------
// Execution.

/// What one trial produced.
enum Outcome {
    /// An observation, counted in the moments.
    Value(u64),
    /// The trial hit its cap; counted in the moments *at the cap* and in
    /// the censored tally (pursuit/meeting semantics — the mean is a
    /// lower bound whenever any game was censored).
    CensoredAt(u64),
    /// The trial hit its cap and is *excluded* from the moments (hitting
    /// semantics — capped walks are discarded, only tallied).
    Discarded,
}

fn collect(outcomes: &[Outcome]) -> (IntMoments, u64) {
    let mut moments = IntMoments::new();
    let mut censored = 0u64;
    for o in outcomes {
        match *o {
            Outcome::Value(x) => moments.push(x),
            Outcome::CensoredAt(x) => {
                moments.push(x);
                censored += 1;
            }
            Outcome::Discarded => censored += 1,
        }
    }
    (moments, censored)
}

/// Per-worker scratch state for cover trials: engine buffers, a reusable
/// cover observer, and the repeated-start vector — one per worker thread,
/// reused across every trial that worker claims (zero-alloc after
/// warmup).
struct CoverWorkspace {
    arena: EngineArena,
    cover: FullCover,
    starts: Vec<u32>,
}

impl CoverWorkspace {
    fn new(n: usize) -> Self {
        CoverWorkspace {
            arena: EngineArena::new(),
            cover: FullCover::new(n),
            starts: Vec::new(),
        }
    }
}

/// The restriction of a [`Session`] to part of the trial-index space:
/// a [`Shard`] (resolved against the budget's total at run time) or an
/// explicit index range.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TrialSlice {
    Shard(Shard),
    Range(Range<usize>),
}

/// The one executor: runs any [`Query`] against a graph under a
/// [`Budget`], optionally restricted to a [`Shard`] (or explicit index
/// range) of the trial-index range, and optionally to a subset of the
/// query's groups. See the module docs for the determinism and shard
/// contracts.
#[derive(Debug, Clone)]
pub struct Session {
    budget: Budget,
    slice: Option<TrialSlice>,
    groups: Option<Vec<usize>>,
}

impl Session {
    /// A session executing under `budget` (no shard: the whole trial
    /// range).
    pub fn new(budget: Budget) -> Session {
        assert!(budget.trials_budget().cap() >= 1, "need at least one trial");
        assert!(budget.threads >= 1, "need at least one thread");
        Session {
            budget,
            slice: None,
            groups: None,
        }
    }

    /// Restricts the session to one shard of the trial-index range.
    /// Sharded *adaptive* budgets run their fixed slice of the rule's
    /// hard cap; the rule is re-evaluated on the merged statistics
    /// ([`Report::certified`]).
    pub fn with_shard(mut self, shard: Shard) -> Session {
        self.slice = Some(TrialSlice::Shard(shard));
        self
    }

    /// Restricts the session to an explicit trial-index range — the
    /// general form of [`with_shard`](Session::with_shard) that `mrw
    /// fanout`'s adaptive waves need (wave boundaries are not balanced
    /// shard splits). The range must be non-empty and lie inside
    /// `[0, budget cap)`.
    ///
    /// # Panics
    /// If the range is empty or extends past the budget's trial cap
    /// (checked at [`run`](Session::run)).
    pub fn with_range(mut self, range: Range<usize>) -> Session {
        assert!(!range.is_empty(), "empty trial range");
        self.slice = Some(TrialSlice::Range(range));
        self
    }

    /// Restricts execution to the given group indices (positions in the
    /// report's group list). Excluded groups still appear in the report —
    /// with their labels, zero trials, and empty moments — so reports
    /// from the same range with the same filter keep a mergeable
    /// structure. This is how `mrw fanout` avoids re-running groups whose
    /// adaptive rule already fired. Callers must use a consistent filter
    /// across the reports they merge: merging differently-filtered
    /// reports of disjoint ranges silently leaves holes in the excluded
    /// groups' samples.
    ///
    /// # Panics
    /// If `groups` is empty.
    pub fn with_groups(mut self, groups: Vec<usize>) -> Session {
        assert!(!groups.is_empty(), "empty group filter");
        self.groups = Some(groups);
        self
    }

    /// Whether group `idx` should actually run (true without a filter).
    fn wants(&self, idx: usize) -> bool {
        self.groups.as_ref().is_none_or(|gs| gs.contains(&idx))
    }

    /// The trial-index range this session executes of an `total`-trial
    /// budget.
    ///
    /// # Panics
    /// If an explicit range extends past `total`.
    fn slice_range(&self, total: usize) -> Range<usize> {
        match &self.slice {
            None => 0..total,
            Some(TrialSlice::Shard(s)) => s.slice(total),
            Some(TrialSlice::Range(r)) => {
                assert!(
                    r.end <= total,
                    "trial range {}..{} extends past the {total}-trial budget",
                    r.start,
                    r.end
                );
                r.clone()
            }
        }
    }

    /// The session's budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Executes `query` on `g`.
    ///
    /// Trial `i` of every group draws an RNG stream that is a pure
    /// function of `(budget.seed, group, i)` — the exact streams the
    /// historical entry points used, so the deprecated shims reproduce
    /// their pre-query-layer samples bit-for-bit.
    ///
    /// # Panics
    /// On invalid queries — anything [`Query::validate`] rejects:
    /// out-of-range vertices, `k = 0`, empty ladders, fractions outside
    /// `(0, 1]`, or a disconnected graph for queries whose expectation
    /// would be infinite. Callers with untrusted input (the CLI spec
    /// path) should call `validate` first and surface the error.
    pub fn run<G: GraphBackend>(&self, g: &G, query: &Query) -> Report {
        if let Err(e) = query.validate(g) {
            panic!("{e}");
        }
        let total = self.budget.trials_budget().cap();
        let range = self.slice_range(total);
        assert!(
            !range.is_empty(),
            "shard slice {range:?} of a {total}-trial budget is empty"
        );
        let groups = match query {
            Query::Cover { k, starts } => self.cover_groups(g, *k, starts, None, 0),
            Query::PartialCover { k, start, gammas } => self.partial_groups(g, *k, *start, gammas),
            Query::Hitting { from, to, cap } => {
                vec![self.hitting_group(g, *from, *to, *cap, self.budget.seed, 0)]
            }
            Query::HMax => self.hmax_groups(g),
            Query::Meeting {
                a,
                b,
                laziness,
                cap,
            } => vec![self.meeting_group(g, *a, *b, *laziness, *cap)],
            Query::Pursuit {
                ks,
                hunters,
                prey,
                strategy,
                cap,
            } => ks
                .iter()
                .enumerate()
                .map(|(i, &k)| self.pursuit_group(g, k, *hunters, *prey, *strategy, *cap, i))
                .collect(),
            Query::SpeedupLadder { start, ks } => self.ladder_groups(g, *start, ks),
        };
        Report {
            graph: GraphInfo {
                name: g.name().to_string(),
                n: g.n(),
            },
            query: query.clone(),
            budget: self.budget.clone(),
            coverage: if self.slice.is_none() {
                Coverage::full(total as u64)
            } else {
                Coverage::of_range(range)
            },
            groups,
        }
    }

    /// Runs one group's trials under the session's budget and shard:
    /// adaptive budgets sample in waves until `rule` fires (whole-range
    /// sessions only); everything else fans the (sliced) index range out
    /// flat. `sample(ws, i)` must be a pure function of `i`.
    fn run_group<S: Send>(
        &self,
        init: impl Fn() -> S + Sync,
        sample: impl Fn(&mut S, usize) -> Outcome + Sync,
    ) -> (u64, IntMoments, u64) {
        let threads = self.budget.threads;
        let trials = self.budget.trials_budget();
        match (trials, &self.slice) {
            (Trials::Adaptive(rule), None) => {
                let outcomes =
                    par_map_chunks_with(rule.max_trials, threads, init, sample, |sofar| {
                        let (moments, _) = collect(sofar);
                        if rule.satisfied_by(&moments.summary()) {
                            0
                        } else {
                            rule.next_wave(sofar.len())
                        }
                    });
                let (moments, censored) = collect(&outcomes);
                (outcomes.len() as u64, moments, censored)
            }
            (trials, _) => {
                let range = self.slice_range(trials.cap());
                let lo = range.start;
                let outcomes = par_map_with(range.len(), threads, init, |ws, i| sample(ws, lo + i));
                let (moments, censored) = collect(&outcomes);
                (outcomes.len() as u64, moments, censored)
            }
        }
    }

    /// An unexecuted group: the label a filtered-out group keeps so the
    /// report's structure stays mergeable.
    fn empty_group(label: String) -> Group {
        Group {
            label,
            trials: 0,
            moments: IntMoments::new(),
            censored: 0,
        }
    }

    /// Cover groups, one per start. `seed_override` lets the speed-up
    /// ladder keep its historical independent per-k streams; `base` is
    /// the report-wide index of the first produced group (for the group
    /// filter).
    fn cover_groups<G: GraphBackend>(
        &self,
        g: &G,
        k: usize,
        starts: &[u32],
        seed_override: Option<u64>,
        base: usize,
    ) -> Vec<Group> {
        let seed = seed_override.unwrap_or(self.budget.seed);
        starts
            .iter()
            .enumerate()
            .map(|(i, &start)| {
                assert!((start as usize) < g.n(), "start {start} out of range");
                if !self.wants(base + i) {
                    return Self::empty_group(format!("start={start}"));
                }
                // The stream every cover estimator has always used:
                // seed → child(start+1) → trial.
                let seq = SeedSequence::new(seed).child(start as u64 + 1);
                let (trials, moments, censored) = self.run_group(
                    || CoverWorkspace::new(g.n()),
                    |ws, trial| {
                        let mut rng = walk_rng(seq.seed_for(trial as u64));
                        ws.starts.clear();
                        ws.starts.resize(k, start);
                        ws.cover.reset(g.n());
                        let out = Engine::new(g, SimpleStep, &mut ws.cover)
                            .discipline(self.budget.mode)
                            .batch(self.budget.batch)
                            .run_with(&ws.starts, &mut rng, &mut ws.arena);
                        Outcome::Value(out.rounds)
                    },
                );
                Group {
                    label: format!("start={start}"),
                    trials,
                    moments,
                    censored,
                }
            })
            .collect()
    }

    fn partial_groups<G: GraphBackend>(
        &self,
        g: &G,
        k: usize,
        start: u32,
        gammas: &[f64],
    ) -> Vec<Group> {
        assert!(k >= 1, "need at least one walk");
        let starts = vec![start; k];
        let seed = self.budget.seed;
        gammas
            .iter()
            .enumerate()
            .map(|(gi, &gamma)| {
                if !self.wants(gi) {
                    return Self::empty_group(format!("gamma={gamma}"));
                }
                let target = fraction_target(g.n(), gamma);
                // Decorrelate (γ, trial) pairs without coupling to position
                // in the sweep (the historical partial-profile stream).
                let (trials, moments, censored) = self.run_group(
                    || (),
                    |(), t| {
                        let mut rng = walk_rng(
                            seed ^ (gi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ (t as u64) << 20,
                        );
                        Outcome::Value(kwalk_partial_cover_rounds(g, &starts, target, &mut rng))
                    },
                );
                Group {
                    label: format!("gamma={gamma}"),
                    trials,
                    moments,
                    censored,
                }
            })
            .collect()
    }

    fn hitting_group<G: GraphBackend>(
        &self,
        g: &G,
        from: u32,
        to: u32,
        cap: u64,
        seed: u64,
        idx: usize,
    ) -> Group {
        if !self.wants(idx) {
            return Self::empty_group(format!("h({from}->{to})"));
        }
        // The historical hitting stream: seed → child("HIT!") → trial.
        let seq = SeedSequence::new(seed).child(0x48495421);
        let (trials, moments, censored) = self.run_group(
            || (),
            |(), t| {
                let mut rng = walk_rng(seq.seed_for(t as u64));
                match steps_to_hit(g, from, to, cap, &mut rng) {
                    Some(steps) => Outcome::Value(steps),
                    None => Outcome::Discarded,
                }
            },
        );
        Group {
            label: format!("h({from}->{to})"),
            trials,
            moments,
            censored,
        }
    }

    fn hmax_groups<G: GraphBackend>(&self, g: &G) -> Vec<Group> {
        let cap = hmax_mc_cap(g);
        hmax_candidates(g)
            .into_iter()
            .enumerate()
            .map(|(i, (u, v))| {
                // Per-pair seed offset, as hmax_estimate always used.
                self.hitting_group(g, u, v, cap, self.budget.seed ^ (i as u64) << 32, i)
            })
            .collect()
    }

    fn meeting_group<G: GraphBackend>(
        &self,
        g: &G,
        a: u32,
        b: u32,
        laziness: Option<f64>,
        cap: u64,
    ) -> Group {
        if !self.wants(0) {
            return Self::empty_group("meeting".to_string());
        }
        let process = laziness.map_or(WalkProcess::Simple, WalkProcess::Lazy);
        let seq = SeedSequence::new(self.budget.seed).child(0x4D45_4554); // "MEET"
        let (trials, moments, censored) = self.run_group(
            || (),
            |(), t| {
                let mut rng = walk_rng(seq.seed_for(t as u64));
                match meeting_rounds(g, a, b, process, cap, &mut rng) {
                    Some(rounds) => Outcome::Value(rounds),
                    None => Outcome::CensoredAt(cap),
                }
            },
        );
        Group {
            label: "meeting".to_string(),
            trials,
            moments,
            censored,
        }
    }

    #[allow(clippy::too_many_arguments)] // private; mirrors Query::Pursuit's fields plus the group index
    fn pursuit_group<G: GraphBackend>(
        &self,
        g: &G,
        k: usize,
        hunters_start: u32,
        prey: u32,
        strategy: PreyStrategy,
        cap: u64,
        idx: usize,
    ) -> Group {
        assert!(k >= 1, "need at least one hunter");
        if !self.wants(idx) {
            return Self::empty_group(format!("k={k}"));
        }
        let hunters = vec![hunters_start; k];
        let seed = self.budget.seed;
        let (trials, moments, censored) = self.run_group(
            || (),
            |(), t| {
                // The historical mean_catch_time stream: seed ⊕ k ⊕ t.
                let mut rng = walk_rng(seed ^ ((k as u64) << 40) ^ t as u64);
                match pursuit_rounds(g, &hunters, prey, strategy, cap, &mut rng) {
                    Some(rounds) => Outcome::Value(rounds),
                    None => Outcome::CensoredAt(cap),
                }
            },
        );
        Group {
            label: format!("k={k}"),
            trials,
            moments,
            censored,
        }
    }

    fn ladder_groups<G: GraphBackend>(&self, g: &G, start: u32, ks: &[usize]) -> Vec<Group> {
        // Baseline C^1 on its historical independent stream (seed ⊕ 0xBA5E);
        // each k draws seed + k, so adding a rung never perturbs the others.
        let mut groups = self.cover_groups(g, 1, &[start], Some(self.budget.seed ^ 0xBA5E), 0);
        groups[0].label = "baseline".to_string();
        for (i, &k) in ks.iter().enumerate() {
            assert!(k >= 1, "k must be ≥ 1");
            let mut gk = self.cover_groups(
                g,
                k,
                &[start],
                Some(self.budget.seed.wrapping_add(k as u64)),
                i + 1,
            );
            gk[0].label = format!("k={k}");
            groups.append(&mut gk);
        }
        groups
    }

    // -- typed conveniences over `run` ------------------------------------

    /// Monte-Carlo `h(from, to)` as a typed view (see
    /// [`Query::Hitting`] for the capping semantics).
    pub fn hitting<G: GraphBackend>(&self, g: &G, from: u32, to: u32, cap: u64) -> HitEstimate {
        let report = self.run(g, &Query::Hitting { from, to, cap });
        HitEstimate::from_report(&report, 0)
    }

    /// Mean catch time of `k` hunters from `hunter_start` against a prey
    /// at `prey`, as a typed view over a one-rung [`Query::Pursuit`].
    pub fn pursuit<G: GraphBackend>(
        &self,
        g: &G,
        hunter_start: u32,
        prey: u32,
        k: usize,
        strategy: PreyStrategy,
        cap: u64,
    ) -> CatchEstimate {
        let report = self.run(
            g,
            &Query::Pursuit {
                ks: vec![k],
                hunters: hunter_start,
                prey,
                strategy,
                cap,
            },
        );
        CatchEstimate::from_report(&report, 0)
    }

    /// Partial-cover profile `C^k_γ` for each `γ`, as typed rows over a
    /// [`Query::PartialCover`].
    pub fn partial_profile<G: GraphBackend>(
        &self,
        g: &G,
        start: u32,
        k: usize,
        gammas: &[f64],
    ) -> Vec<PartialCoverPoint> {
        let report = self.run(
            g,
            &Query::PartialCover {
                k,
                start,
                gammas: gammas.to_vec(),
            },
        );
        gammas
            .iter()
            .zip(&report.groups)
            .map(|(&gamma, group)| PartialCoverPoint {
                gamma,
                target: fraction_target(g.n(), gamma),
                mean_rounds: group.mean(),
                trials: group.trials as usize,
            })
            .collect()
    }

    /// `h_max(G)` with the attaining pair: the exact `O(n³)` solver below
    /// [`EXACT_HMAX_LIMIT`](crate::hitting_mc::EXACT_HMAX_LIMIT), a
    /// [`Query::HMax`] Monte-Carlo lower bound over candidate pairs
    /// otherwise.
    pub fn hmax<G: GraphBackend>(&self, g: &G) -> HmaxEstimate {
        assert!(
            g.is_connected(),
            "h_max is infinite on a disconnected graph"
        );
        if g.n() <= crate::hitting_mc::EXACT_HMAX_LIMIT {
            // The spectral solver wants materialized arrays; n ≤ 800 here,
            // so building the implicit backend's CSR twin is trivial — and
            // it is the *exact* generator output, so the answer is the one
            // the CSR backend reports.
            let ht = match g.csr() {
                Some(csr) => mrw_spectral::hitting_times_all(csr),
                None => mrw_spectral::hitting_times_all(&g.to_csr()),
            };
            let pair = ht.argmax();
            return HmaxEstimate {
                hmax: ht.hmax(),
                pair,
                exact: true,
            };
        }
        let report = self.run(g, &Query::HMax);
        let mut best = HmaxEstimate {
            hmax: 0.0,
            pair: (0, 0),
            exact: false,
        };
        for (group, (u, v)) in report.groups.iter().zip(hmax_candidates(g)) {
            if !group.moments.is_empty() && group.mean() > best.hmax {
                best.hmax = group.mean();
                best.pair = (u, v);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;

    #[test]
    fn shard_slices_partition_the_range() {
        for n in [0usize, 1, 7, 512, 513] {
            for s in [1usize, 2, 3, 5] {
                let mut covered = 0;
                for i in 0..s {
                    let r = Shard::new(i, s).slice(n);
                    assert_eq!(r.start, covered, "gap at shard {i}/{s} of {n}");
                    covered = r.end;
                }
                assert_eq!(covered, n, "shards of {n} into {s} don't cover");
            }
        }
    }

    #[test]
    fn shard_parse() {
        assert_eq!(Shard::parse("0/2"), Ok(Shard::new(0, 2)));
        assert_eq!(Shard::parse("2/3"), Ok(Shard::new(2, 3)));
        assert!(Shard::parse("2/2").is_err());
        assert!(Shard::parse("0").is_err());
        assert!(Shard::parse("a/b").is_err());
        assert!(Shard::parse("0/0").is_err());
    }

    #[test]
    fn shard_plan_partitions_without_empty_ranges() {
        for total in [1usize, 2, 7, 64, 513] {
            for requested in [1usize, 2, 4, 9, 1000] {
                let plan = ShardPlan::new(total, requested);
                assert!(plan.count() >= 1 && plan.count() <= total.max(1));
                assert_eq!(plan.count(), requested.clamp(1, total));
                let mut cursor = 0;
                for r in plan.ranges() {
                    assert_eq!(r.start, cursor, "gap in plan({total}, {requested})");
                    assert!(!r.is_empty(), "empty range in plan({total}, {requested})");
                    cursor = r.end;
                }
                assert_eq!(cursor, total);
            }
        }
    }

    #[test]
    fn shard_plan_ranges_match_shard_slices() {
        // --shard i/s and --range from the plan must describe the same work.
        let plan = ShardPlan::new(100, 3);
        for i in 0..3 {
            assert_eq!(plan.range(i), Shard::new(i, 3).slice(100));
        }
    }

    #[test]
    fn shard_plan_split_covers_subrange() {
        for (range, parts) in [(10..20, 3), (0..1, 5), (7..8, 1), (3..103, 7)] {
            let pieces = ShardPlan::split(range.clone(), parts);
            assert!(pieces.len() <= parts);
            let mut cursor = range.start;
            for p in &pieces {
                assert_eq!(p.start, cursor);
                assert!(!p.is_empty());
                cursor = p.end;
            }
            assert_eq!(cursor, range.end);
        }
    }

    #[test]
    fn coverage_missing_is_the_complement() {
        let total = 20;
        let c = Coverage::from_ranges(vec![(2, 5), (9, 12)], total).unwrap();
        assert_eq!(c.missing(total), vec![(0, 2), (5, 9), (12, 20)]);
        assert_eq!(c.covered_trials(), 6);
        assert_eq!(
            Coverage::full(total).missing(total),
            Vec::<(u64, u64)>::new()
        );
        let edge = Coverage::from_ranges(vec![(0, 20)], total).unwrap();
        assert!(edge.is_full(total));
        assert!(edge.missing(total).is_empty());
    }

    #[test]
    fn coverage_missing_within_restricts_to_the_window() {
        let c = Coverage::from_ranges(vec![(2, 5), (9, 12), (14, 16)], 20).unwrap();
        // Window == whole space agrees with `missing`.
        assert_eq!(c.missing_within(0, 20), c.missing(20));
        // Window cut mid-range on both sides.
        assert_eq!(c.missing_within(3, 15), vec![(5, 9), (12, 14)]);
        // Window entirely inside one covered range: nothing missing.
        assert_eq!(c.missing_within(9, 12), Vec::<(u64, u64)>::new());
        assert_eq!(c.missing_within(10, 11), Vec::<(u64, u64)>::new());
        // Window entirely inside a gap: everything missing.
        assert_eq!(c.missing_within(6, 8), vec![(6, 8)]);
        // Window past every covered range.
        assert_eq!(c.missing_within(16, 20), vec![(16, 20)]);
        // Empty window.
        assert_eq!(c.missing_within(7, 7), Vec::<(u64, u64)>::new());
        // Coverage that ends exactly at the window start is skipped.
        assert_eq!(c.missing_within(5, 9), vec![(5, 9)]);
    }

    #[test]
    fn range_sessions_merge_like_shards() {
        let g = generators::cycle(24);
        let q = Query::Cover {
            k: 2,
            starts: vec![0, 5],
        };
        let budget = Budget {
            trials: 30,
            seed: 11,
            ..Budget::default()
        };
        let whole = Session::new(budget.clone()).run(&g, &q);
        // An arbitrary (unbalanced) partition into explicit ranges.
        let parts: Vec<Report> = [0..7, 7..8, 8..30]
            .into_iter()
            .map(|r| Session::new(budget.clone()).with_range(r).run(&g, &q))
            .collect();
        let merged = parts
            .iter()
            .skip(1)
            .try_fold(parts[0].clone(), |acc, r| Report::merge(&acc, r))
            .unwrap();
        assert_eq!(merged, whole);
        assert_eq!(merged.to_json(), whole.to_json());
    }

    #[test]
    fn group_filter_runs_only_selected_groups() {
        let g = generators::cycle(16);
        let q = Query::Cover {
            k: 2,
            starts: vec![0, 3, 7],
        };
        let budget = Budget {
            trials: 8,
            seed: 2,
            ..Budget::default()
        };
        let whole = Session::new(budget.clone()).run(&g, &q);
        let filtered = Session::new(budget).with_groups(vec![1]).run(&g, &q);
        assert_eq!(filtered.groups.len(), 3);
        // Selected group: identical stats (streams are per-group).
        assert_eq!(filtered.groups[1], whole.groups[1]);
        // Excluded groups: present, labeled, empty.
        for idx in [0, 2] {
            assert_eq!(filtered.groups[idx].label, whole.groups[idx].label);
            assert_eq!(filtered.groups[idx].trials, 0);
            assert!(filtered.groups[idx].moments.is_empty());
        }
        // The filtered report still serializes and round-trips.
        let back = Report::from_json(&filtered.to_json()).unwrap();
        assert_eq!(back, filtered);
    }

    #[test]
    fn group_filter_matches_ladder_indices() {
        let g = generators::cycle(12);
        let q = Query::SpeedupLadder {
            start: 0,
            ks: vec![2, 4],
        };
        let budget = Budget {
            trials: 6,
            seed: 3,
            ..Budget::default()
        };
        let whole = Session::new(budget.clone()).run(&g, &q);
        // Index 0 is the baseline, 1.. are the rungs.
        let filtered = Session::new(budget).with_groups(vec![0, 2]).run(&g, &q);
        assert_eq!(filtered.groups[0], whole.groups[0]);
        assert_eq!(filtered.groups[2], whole.groups[2]);
        assert_eq!(filtered.groups[1].trials, 0);
        assert_eq!(filtered.groups[1].label, "k=2");
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_shard_slice_panics_instead_of_degenerate_coverage() {
        let g = generators::cycle(8);
        let budget = Budget {
            trials: 1,
            seed: 1,
            ..Budget::default()
        };
        let _ = Session::new(budget).with_shard(Shard::new(0, 2)).run(
            &g,
            &Query::Cover {
                k: 1,
                starts: vec![0],
            },
        );
    }

    #[test]
    fn two_way_shard_merge_is_bit_identical() {
        let g = generators::cycle(24);
        let q = Query::Cover {
            k: 2,
            starts: vec![0, 5],
        };
        let budget = Budget {
            trials: 32,
            seed: 11,
            ..Budget::default()
        };
        let whole = Session::new(budget.clone()).run(&g, &q);
        let a = Session::new(budget.clone())
            .with_shard(Shard::new(0, 2))
            .run(&g, &q);
        let b = Session::new(budget)
            .with_shard(Shard::new(1, 2))
            .run(&g, &q);
        let merged = Report::merge(&a, &b).unwrap();
        assert_eq!(merged, whole);
        assert_eq!(merged.to_json(), whole.to_json());
    }

    #[test]
    fn merge_rejects_mismatched_experiments() {
        let g = generators::cycle(16);
        let q = Query::Cover {
            k: 1,
            starts: vec![0],
        };
        let budget = Budget {
            trials: 8,
            seed: 1,
            ..Budget::default()
        };
        let a = Session::new(budget.clone()).run(&g, &q);
        let other_seed = Session::new(Budget {
            seed: 2,
            ..budget.clone()
        })
        .run(&g, &q);
        assert!(Report::merge(&a, &other_seed).is_err());
        let other_query = Session::new(budget).run(
            &g,
            &Query::Cover {
                k: 2,
                starts: vec![0],
            },
        );
        assert!(Report::merge(&a, &other_query).is_err());
    }

    #[test]
    fn merge_rejects_double_counted_coverage() {
        let g = generators::cycle(16);
        let q = Query::Cover {
            k: 1,
            starts: vec![0],
        };
        let budget = Budget {
            trials: 12,
            seed: 1,
            ..Budget::default()
        };
        let half = |i| {
            Session::new(budget.clone())
                .with_shard(Shard::new(i, 2))
                .run(&g, &q)
        };
        let (a, b) = (half(0), half(1));
        // The same shard twice: would count trials [0, 6) twice.
        assert!(Report::merge(&a, &a).is_err());
        // A complete report merged with anything overlaps by definition.
        let whole = Report::merge(&a, &b).unwrap();
        assert!(whole.is_complete());
        assert!(Report::merge(&whole, &a).is_err());
        // Shards from incompatible partitions overlap partially.
        let third = Session::new(budget)
            .with_shard(Shard::new(0, 3))
            .run(&g, &q);
        assert!(Report::merge(&a, &third).is_err());
        // Partial merges say so: a lone shard is not the complete run.
        assert!(!a.is_complete());
    }

    #[test]
    fn from_json_rejects_malformed_reports_without_panicking() {
        let g = generators::cycle(8);
        let report = Session::new(Budget {
            trials: 4,
            seed: 1,
            ..Budget::default()
        })
        .run(
            &g,
            &Query::Cover {
                k: 1,
                starts: vec![0],
            },
        );
        let text = report.to_json();
        // Coverage out of range / overlapping.
        for bad in [
            r#""coverage": [[0, 99]]"#,
            r#""coverage": [[2, 1]]"#,
            r#""coverage": [[0, 3], [2, 4]]"#,
        ] {
            let mutated = text.replace(r#""coverage": null"#, bad);
            assert!(Report::from_json(&mutated).is_err(), "accepted {bad}");
        }
        // Moments violating Cauchy–Schwarz must be a parse error, not a
        // panic.
        let mutated = text.replace(r#""sum_sq": "#, r#""sum_sq": 1 , "ignored": "#);
        assert!(Report::from_json(&mutated).is_err());
    }

    #[test]
    fn report_json_round_trips() {
        let g = generators::torus_2d(4);
        let q = Query::Pursuit {
            ks: vec![1, 2],
            hunters: 0,
            prey: 9,
            strategy: PreyStrategy::RandomWalk,
            cap: 100_000,
        };
        let report = Session::new(Budget {
            trials: 8,
            seed: 3,
            ..Budget::default()
        })
        .run(&g, &q);
        let text = report.to_json();
        let back = Report::from_json(&text).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn spec_round_trips_and_builds() {
        let spec = QuerySpec {
            graph: GraphSpec::new("cycle", 64),
            query: Query::SpeedupLadder {
                start: 0,
                ks: vec![2, 4],
            },
            budget: Budget {
                trials: 16,
                seed: 5,
                ..Budget::default()
            },
        };
        let back = QuerySpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.graph.build().unwrap().n(), 64);
    }

    #[test]
    fn spec_budget_defaults_and_shorthand() {
        let spec = QuerySpec::from_json(
            r#"{"graph": {"family": "cycle", "n": 8},
                "query": {"type": "cover", "k": 1, "starts": [0]},
                "budget": {"trials": 512, "seed": 7}}"#,
        )
        .unwrap();
        assert_eq!(spec.budget.trials, 512);
        assert_eq!(spec.budget.seed, 7);
        assert_eq!(spec.budget.confidence, 0.95);
        // No budget at all.
        let spec = QuerySpec::from_json(
            r#"{"graph": {"family": "cycle", "n": 8},
                "query": {"type": "hmax"}}"#,
        )
        .unwrap();
        assert_eq!(spec.budget, Budget::default());
    }

    #[test]
    fn adaptive_spec_round_trips() {
        let budget = Budget {
            precision: Some(
                Precision::relative(0.05)
                    .with_confidence(0.99)
                    .with_min_trials(16)
                    .with_max_trials(512),
            ),
            seed: 1,
            ..Budget::default()
        };
        let spec = QuerySpec {
            graph: GraphSpec::new("torus", 8),
            query: Query::Hitting {
                from: 0,
                to: 9,
                cap: 1_000_000,
            },
            budget,
        };
        let back = QuerySpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn budget_estimator_round_trip() {
        let b = Budget {
            trials: 48,
            seed: 9,
            batch: BatchMode::Never,
            mode: KWalkMode::Interleaved,
            ..Budget::default()
        };
        let back = Budget::from_estimator(&b.estimator());
        assert!(b.same_experiment(&back));
        let adaptive = Budget {
            precision: Some(Precision::relative(0.1)),
            ..b
        };
        let back = Budget::from_estimator(&adaptive.estimator());
        assert!(adaptive.same_experiment(&back));
    }

    #[test]
    fn certified_reports_adaptive_rule_status() {
        let g = generators::cycle(12);
        let rule = Precision::relative(0.2)
            .with_min_trials(8)
            .with_max_trials(512);
        let budget = Budget {
            precision: Some(rule),
            seed: 4,
            ..Budget::default()
        };
        let q = Query::Cover {
            k: 1,
            starts: vec![0],
        };
        let report = Session::new(budget.clone()).run(&g, &q);
        assert_eq!(report.certified(), Some(true));
        // Fixed budgets don't certify.
        let fixed = Session::new(Budget {
            precision: None,
            trials: 8,
            ..budget
        })
        .run(&g, &q);
        assert_eq!(fixed.certified(), None);
    }
}
