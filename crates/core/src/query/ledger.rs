//! Persistent report-cache ledgers (`mrw-ledger-v1`).
//!
//! `mrw serve` keys its report cache by [`QuerySpec::report_key`] and
//! stores, per group, a **cumulative prefix ledger**: a sorted list of
//! `(hi, Group)` windows where each `Group` holds the exact integer
//! moments of trials `[0, hi)`. That shape is already the
//! `mrw-checkpoint-v1` wave-window idea specialized to prefixes, so
//! persisting a cache entry across daemon restarts is (deliberately)
//! mostly serialization. This module is that serialization: a canonical-
//! JSON document that embeds the resolved spec template, the resolved
//! graph identity, and every prefix window, fingerprinted the same way
//! checkpoints are.
//!
//! ## Integrity
//!
//! Checkpoints hash only their embedded spec; a ledger is consumed by a
//! long-lived daemon that will serve the stored *moments* back to
//! clients byte-for-byte, so here the FNV-1a fingerprint ([`spec_hash`])
//! covers the **whole payload** — schema tag, report key, spec, graph,
//! and every prefix window — rendered canonically with the `hash` field
//! removed. A flipped digit anywhere in the file (spec *or* moments)
//! fails verification. Loaders treat every failure as "skip this file",
//! never a panic: a corrupt warm-start file costs a recomputation, not
//! the daemon (rule P1).
//!
//! ## What the spec template is
//!
//! The embedded spec carries the budget fields that determine trial
//! outcomes (seed, mode, batch) plus the *largest* trial count the cache
//! entry has materialized; the precision rule is stripped (a cache entry
//! serves any budget of the same key, so persisting one client's
//! stopping rule would be noise). Loaders verify the stored `report_key`
//! against the embedded spec's recomputed key, so a ledger can never be
//! replayed against a different experiment.

use super::checkpoint::spec_hash;
use super::json::{self, Value};
use super::{GraphInfo, Group, QuerySpec};
use mrw_stats::IntMoments;

/// The canonical-JSON schema tag of serialized ledgers.
pub const LEDGER_SCHEMA: &str = "mrw-ledger-v1";

/// One group's cumulative prefix windows: `prefixes[i] = (hi, Group)`
/// where the `Group` aggregates exactly trials `[0, hi)` of this group,
/// with `hi` strictly increasing. This is the in-memory shape the serve
/// cache extends (a bigger budget appends a window; an adaptive replay
/// binary-searches the boundaries).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerGroup {
    /// The group label (`start=0`, `gamma=0.5`, …) — identical to the
    /// `Group` labels inside each window.
    pub label: String,
    /// Sorted cumulative windows; every `Group` covers `[0, hi)`.
    pub prefixes: Vec<(u64, Group)>,
}

/// A serializable report-cache entry: the spec template it answers, the
/// resolved graph it was measured on, and the per-group prefix ledgers.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    /// The budget template (precision stripped, trial count = largest
    /// materialized prefix) plus graph/query — everything needed to
    /// recompute [`QuerySpec::report_key`] and to extend the entry.
    pub spec: QuerySpec,
    /// The resolved graph identity reports are labeled with.
    pub graph: GraphInfo,
    /// One ledger per report group, in report group order.
    pub groups: Vec<LedgerGroup>,
}

impl Ledger {
    /// The cache key this ledger belongs to.
    pub fn report_key(&self) -> String {
        self.spec.report_key()
    }

    /// The canonical on-disk file name for this ledger's cache key:
    /// `ledger-<fnv1a(report_key)>.json`. Key-derived (not content-
    /// derived), so updating an entry overwrites its previous file
    /// instead of accumulating stale generations.
    pub fn file_name(&self) -> String {
        format!("ledger-{}.json", spec_hash(&self.report_key()))
    }

    /// Everything except the `hash` field, in final field order.
    fn payload(&self) -> Value {
        Value::obj(vec![
            ("schema", Value::str(LEDGER_SCHEMA)),
            ("report_key", Value::str(&self.report_key())),
            ("spec", self.spec.to_value()),
            (
                "graph",
                Value::obj(vec![
                    ("name", Value::str(&self.graph.name)),
                    ("n", Value::num(self.graph.n)),
                ]),
            ),
            (
                "groups",
                Value::Arr(
                    self.groups
                        .iter()
                        .map(|lg| {
                            Value::obj(vec![
                                ("label", Value::str(&lg.label)),
                                (
                                    "prefixes",
                                    Value::Arr(
                                        lg.prefixes
                                            .iter()
                                            .map(|(hi, g)| prefix_to_value(*hi, g))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes to canonical ledger JSON. The `hash` field is the
    /// FNV-1a fingerprint of the rest of the document (see the module
    /// docs), spliced in right after the schema tag.
    pub fn to_json(&self) -> String {
        let payload = self.payload();
        let hash = spec_hash(&payload.render());
        let Value::Obj(mut fields) = payload else {
            // payload() always builds an object; keep the never-taken
            // arm total instead of panicking (this feeds a daemon).
            return Value::Null.render();
        };
        fields.insert(1, ("hash".to_string(), Value::str(&hash)));
        Value::Obj(fields).render()
    }

    /// Parses and fully validates a ledger document. Any mismatch —
    /// schema tag, payload fingerprint, report key, budget shape, window
    /// ordering, or moment consistency — is an `Err` describing the
    /// first problem found; callers are expected to skip such files with
    /// a warning, never abort.
    pub fn from_json(text: &str) -> Result<Ledger, String> {
        let v = json::parse(text)?;
        match v.req("schema")?.as_str() {
            Some(LEDGER_SCHEMA) => {}
            _ => return Err(format!("unknown schema (expected {LEDGER_SCHEMA})")),
        }
        let stored_hash = v.req("hash")?.as_str().ok_or("hash must be a string")?;
        let Value::Obj(fields) = &v else {
            return Err("ledger must be an object".into());
        };
        let without_hash = Value::Obj(
            fields
                .iter()
                .filter(|(k, _)| k != "hash")
                .cloned()
                .collect(),
        );
        let expected = spec_hash(&without_hash.render());
        if stored_hash != expected {
            return Err(format!(
                "hash mismatch: ledger says {stored_hash}, payload hashes to {expected} — \
                 the file was edited or truncated"
            ));
        }
        let spec = QuerySpec::from_value(v.req("spec")?)?;
        if spec.budget.precision.is_some() {
            return Err("ledger spec must not carry a precision rule".into());
        }
        let stored_key = v
            .req("report_key")?
            .as_str()
            .ok_or("report_key must be a string")?;
        if stored_key != spec.report_key() {
            return Err("report_key does not match the embedded spec".into());
        }
        let graph = v.req("graph")?;
        let graph = GraphInfo {
            name: graph
                .req("name")?
                .as_str()
                .ok_or("graph.name must be a string")?
                .to_string(),
            n: graph
                .req("n")?
                .as_usize()
                .ok_or("graph.n must be an integer")?,
        };
        let groups = v
            .req("groups")?
            .as_arr()
            .ok_or("groups must be an array")?
            .iter()
            .enumerate()
            .map(|(i, lg)| ledger_group_from_value(lg).map_err(|e| format!("groups[{i}]: {e}")))
            .collect::<Result<Vec<_>, String>>()?;
        if groups.is_empty() {
            return Err("ledger has no groups".into());
        }
        Ok(Ledger {
            spec,
            graph,
            groups,
        })
    }
}

/// One `(hi, Group)` window; field shape mirrors report groups so the
/// two schemas read alike, with the window bound `hi` first.
fn prefix_to_value(hi: u64, g: &Group) -> Value {
    Value::obj(vec![
        ("hi", Value::num(hi)),
        ("trials", Value::num(g.trials)),
        ("count", Value::num(g.moments.count())),
        ("sum", Value::num(g.moments.sum())),
        ("sum_sq", Value::num(g.moments.sum_sq())),
        ("min", g.moments.min().map_or(Value::Null, Value::num)),
        ("max", g.moments.max().map_or(Value::Null, Value::num)),
        ("censored", Value::num(g.censored)),
    ])
}

fn ledger_group_from_value(v: &Value) -> Result<LedgerGroup, String> {
    let label = v
        .req("label")?
        .as_str()
        .ok_or("label must be a string")?
        .to_string();
    let mut prefixes = Vec::new();
    let mut prev_hi = 0u64;
    for (i, p) in v
        .req("prefixes")?
        .as_arr()
        .ok_or("prefixes must be an array")?
        .iter()
        .enumerate()
    {
        let hi = p.req("hi")?.as_u64().ok_or("hi must be an integer")?;
        if hi == 0 || hi <= prev_hi {
            return Err(format!(
                "prefixes[{i}]: window bound {hi} is not strictly increasing"
            ));
        }
        prev_hi = hi;
        let trials = p
            .req("trials")?
            .as_u64()
            .ok_or("trials must be an integer")?;
        if trials != hi {
            return Err(format!(
                "prefixes[{i}]: a [0, {hi}) prefix must have dispatched exactly {hi} trials, \
                 not {trials}"
            ));
        }
        let count = p.req("count")?.as_u64().ok_or("count must be an integer")?;
        let min = match p.req("min")? {
            Value::Null => u64::MAX,
            m => m.as_u64().ok_or("min must be an integer")?,
        };
        let max = match p.req("max")? {
            Value::Null => 0,
            m => m.as_u64().ok_or("max must be an integer")?,
        };
        let group = Group {
            label: label.clone(),
            trials,
            moments: IntMoments::try_from_raw(
                count,
                p.req("sum")?.as_u128().ok_or("sum must be an integer")?,
                p.req("sum_sq")?
                    .as_u128()
                    .ok_or("sum_sq must be an integer")?,
                min,
                max,
            )
            .map_err(|e| format!("prefixes[{i}]: {e}"))?,
            censored: p
                .req("censored")?
                .as_u64()
                .ok_or("censored must be an integer")?,
        };
        prefixes.push((hi, group));
    }
    if prefixes.is_empty() {
        return Err("a ledger group needs at least one prefix window".into());
    }
    Ok(LedgerGroup { label, prefixes })
}

#[cfg(test)]
mod tests {
    use super::super::{Budget, GraphSpec, Query, Session};
    use super::*;

    fn spec(trials: usize) -> QuerySpec {
        QuerySpec {
            graph: GraphSpec::new("cycle", 16),
            query: Query::Cover {
                k: 2,
                starts: vec![0, 3],
            },
            budget: Budget {
                trials,
                seed: 11,
                ..Budget::default()
            },
        }
    }

    /// A two-window ledger built from real prefix runs.
    fn ledger() -> Ledger {
        let spec = spec(32);
        let g = spec.graph.resolve().unwrap();
        let r16 = Session::new(Budget {
            trials: 16,
            ..spec.budget.clone()
        })
        .run(&g, &spec.query);
        let r32 = Session::new(spec.budget.clone()).run(&g, &spec.query);
        let groups = r16
            .groups
            .iter()
            .zip(&r32.groups)
            .map(|(a, b)| LedgerGroup {
                label: a.label.clone(),
                prefixes: vec![(16, a.clone()), (32, b.clone())],
            })
            .collect();
        Ledger {
            graph: r32.graph.clone(),
            spec,
            groups,
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let l = ledger();
        let text = l.to_json();
        let back = Ledger::from_json(&text).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.to_json(), text);
        assert_eq!(back.report_key(), l.spec.report_key());
    }

    #[test]
    fn file_name_is_key_derived() {
        let l = ledger();
        assert_eq!(
            l.file_name(),
            format!("ledger-{}.json", spec_hash(&l.report_key()))
        );
        // Same key at a different trial count → same file.
        let mut bigger = l.clone();
        bigger.spec.budget.trials = 64;
        assert_eq!(bigger.file_name(), l.file_name());
    }

    #[test]
    fn tampered_moments_are_rejected() {
        let l = ledger();
        let text = l.to_json();
        let needle = format!("\"sum\": {}", l.groups[0].prefixes[0].1.moments.sum());
        let bumped = format!("\"sum\": {}", l.groups[0].prefixes[0].1.moments.sum() + 1);
        let tampered = text.replacen(&needle, &bumped, 1);
        assert_ne!(tampered, text, "tamper target must exist");
        let err = Ledger::from_json(&tampered).unwrap_err();
        assert!(err.contains("hash mismatch"), "{err}");
    }

    #[test]
    fn truncation_and_schema_skew_are_rejected() {
        let text = ledger().to_json();
        assert!(Ledger::from_json(&text[..text.len() / 2]).is_err());
        let skewed = text.replace(LEDGER_SCHEMA, "mrw-ledger-v0");
        assert!(Ledger::from_json(&skewed)
            .unwrap_err()
            .contains("unknown schema"));
    }

    #[test]
    fn non_increasing_windows_are_rejected() {
        let mut l = ledger();
        l.groups[0].prefixes.swap(0, 1);
        let err = Ledger::from_json(&l.to_json()).unwrap_err();
        assert!(err.contains("strictly increasing"), "{err}");
    }

    #[test]
    fn window_trials_must_match_the_bound() {
        let mut l = ledger();
        l.groups[0].prefixes[0].0 = 15; // Group still holds 16 trials.
        let err = Ledger::from_json(&l.to_json()).unwrap_err();
        assert!(err.contains("dispatched exactly"), "{err}");
    }

    #[test]
    fn precision_bearing_specs_are_rejected() {
        use mrw_stats::Precision;
        let mut l = ledger();
        l.spec.budget.precision = Some(Precision::absolute(1.0));
        let err = Ledger::from_json(&l.to_json()).unwrap_err();
        assert!(err.contains("precision"), "{err}");
    }
}
