//! Monte-Carlo hitting times and `h_max` estimation for graphs too large
//! for the `O(n³)` exact solver.
//!
//! Strategy for `h_max = max_{u,v} h(u,v)`:
//!
//! * **small graphs** — delegate to `mrw_spectral::hitting_times_all`
//!   (exact; the experiments use this up to ~800 vertices);
//! * **large graphs** — Monte-Carlo over candidate pairs. Scanning all
//!   `n(n−1)` pairs is hopeless, but on every family in the paper the
//!   maximizing pair is (or is tied with) a BFS-diametral pair, so we take
//!   the two-sweep endpoints plus a deterministic sample of far pairs and
//!   estimate each by simulation. The result is a lower bound on `h_max`
//!   that is tight on the paper's families — and the experiments that
//!   *depend* on `h_max` (Matthews sandwich, Baby-Matthews) also run the
//!   exact path on sizes where both are available to validate the MC one.
//!
//! Since the query-layer redesign, execution lives in
//! [`Session`](crate::query::Session) ([`Query::Hitting`](crate::query::Query)
//! / [`Query::HMax`](crate::query::Query)); this module keeps the typed
//! result views ([`HitEstimate`], [`HmaxEstimate`]) and the deterministic
//! planning helpers ([`hmax_candidates`], [`hmax_mc_cap`]) those queries
//! share. The pre-redesign free-function shims were removed in 0.3.0 —
//! build a [`Budget`](crate::query::Budget) and call
//! [`Session::hitting`](crate::query::Session::hitting) /
//! [`Session::hmax`](crate::query::Session::hmax).

use mrw_graph::{algo, GraphBackend};
use mrw_stats::Summary;

use crate::query::Report;

/// Monte-Carlo estimate of `h(u,v)` from independent walks.
///
/// `cap` bounds each walk; capped trials are *discarded* (reported via
/// `capped`), so on slow graphs choose `cap ≫` the expected hitting time
/// or the estimate will be biased low.
#[derive(Debug, Clone)]
pub struct HitEstimate {
    /// Source vertex.
    pub from: u32,
    /// Target vertex.
    pub to: u32,
    /// Summary over un-capped trials.
    pub steps: Summary,
    /// Number of trials that hit the cap and were discarded.
    pub capped: usize,
}

impl HitEstimate {
    /// Builds the typed view over one group of a
    /// [`Query::Hitting`](crate::query::Query) (or
    /// [`Query::HMax`](crate::query::Query)) report.
    ///
    /// # Panics
    /// If the report is for a different query kind or `group` is out of
    /// range.
    pub fn from_report(report: &Report, group: usize) -> HitEstimate {
        use crate::query::Query;
        let (from, to) = match &report.query {
            Query::Hitting { from, to, .. } => (*from, *to),
            Query::HMax => hmax_label_pair(&report.groups[group].label),
            other => panic!("not a hitting report: {}", other.kind()),
        };
        let g = &report.groups[group];
        HitEstimate {
            from,
            to,
            steps: g.summary(),
            capped: g.censored as usize,
        }
    }
}

/// Recovers the `(from, to)` pair from an `h(u->v)` group label.
fn hmax_label_pair(label: &str) -> (u32, u32) {
    let inner = label
        .strip_prefix("h(")
        .and_then(|s| s.strip_suffix(')'))
        .expect("hmax group label");
    let (u, v) = inner.split_once("->").expect("hmax group label");
    (u.parse().expect("vertex"), v.parse().expect("vertex"))
}

/// Result of an `h_max` search.
#[derive(Debug, Clone)]
pub struct HmaxEstimate {
    /// The estimated maximum hitting time.
    pub hmax: f64,
    /// The pair attaining it.
    pub pair: (u32, u32),
    /// Whether the value is exact (spectral solve) or a Monte-Carlo lower
    /// bound over candidate pairs.
    pub exact: bool,
}

/// Vertex-count threshold below which
/// [`Session::hmax`](crate::query::Session::hmax) uses the exact `O(n³)`
/// fundamental-matrix solver.
pub const EXACT_HMAX_LIMIT: usize = 800;

/// The deterministic candidate pairs a [`Query::HMax`](crate::query::Query)
/// probes: two-sweep BFS-diametral endpoints in both orientations, plus
/// evenly spaced far pairs. One report group per pair, in this order.
pub fn hmax_candidates<G: GraphBackend>(g: &G) -> Vec<(u32, u32)> {
    let d0 = algo::bfs_distances(g, 0);
    let far1 = d0
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as u32)
        .expect("non-empty graph");
    let d1 = algo::bfs_distances(g, far1);
    let far2 = d1
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as u32)
        .expect("non-empty graph");

    let mut candidates = vec![(far1, far2), (far2, far1)];
    let stride = (g.n() / 4).max(1);
    for i in 0..4 {
        let u = ((i * stride) % g.n()) as u32;
        if u != far2 {
            candidates.push((u, far2));
        }
        if u != far1 {
            candidates.push((far1, u));
        }
    }
    candidates
}

/// The per-walk step cap a [`Query::HMax`](crate::query::Query) uses: a
/// generous multiple of a cheap upper-scale proxy (`m·n` covers
/// `h_max ≤ 2mn` from the standard commute-time bound; we use `4mn`,
/// floored at 10⁶).
pub fn hmax_mc_cap<G: GraphBackend>(g: &G) -> u64 {
    4u64.saturating_mul(g.m() as u64)
        .saturating_mul(g.n() as u64)
        .max(1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Budget, Query, Session};
    use mrw_graph::generators;

    fn session(trials: usize, seed: u64, threads: usize) -> Session {
        Session::new(Budget {
            trials,
            seed,
            threads,
            ..Budget::default()
        })
    }

    #[test]
    fn mc_matches_exact_on_cycle() {
        let n = 16;
        let g = generators::cycle(n);
        // h(0, 8) = 8 · 8 = 64 exactly.
        let est = session(3000, 77, 4).hitting(&g, 0, 8, 10_000_000);
        assert_eq!(est.capped, 0);
        let mean = est.steps.mean();
        assert!((mean - 64.0).abs() < 4.0, "mean {mean}");
    }

    #[test]
    fn small_graph_hmax_is_exact() {
        let g = generators::path(10);
        let e = session(10, 1, 2).hmax(&g);
        assert!(e.exact);
        assert!((e.hmax - 81.0).abs() < 1e-6); // (n−1)² = 81
    }

    #[test]
    fn capped_trials_reported() {
        let g = generators::cycle(64);
        let est = session(50, 5, 2).hitting(&g, 0, 32, 3);
        assert_eq!(est.capped, 50);
        assert_eq!(est.steps.count(), 0);
    }

    #[test]
    fn deterministic() {
        let g = generators::torus_2d(5);
        let a = session(64, 9, 1).hitting(&g, 0, 12, 1_000_000);
        let b = session(64, 9, 4).hitting(&g, 0, 12, 1_000_000);
        assert_eq!(a.steps.mean(), b.steps.mean());
    }

    #[test]
    fn large_graph_takes_mc_path() {
        // Cycle of 1024 > EXACT_HMAX_LIMIT; hmax = (n/2)² = 262144; the
        // diametral candidates find exactly the antipodal pair.
        let g = generators::cycle(1024);
        let e = session(12, 3, 8).hmax(&g);
        assert!(!e.exact);
        let expect = 512.0 * 512.0;
        assert!(
            e.hmax > expect * 0.6 && e.hmax < expect * 1.5,
            "hmax {} vs theory {expect}",
            e.hmax
        );
    }

    #[test]
    fn convenience_equals_session_run_view() {
        let g = generators::torus_2d(5);
        let convenience = session(48, 9, 2).hitting(&g, 0, 12, 1_000_000);
        let report = session(48, 9, 2).run(
            &g,
            &Query::Hitting {
                from: 0,
                to: 12,
                cap: 1_000_000,
            },
        );
        let direct = HitEstimate::from_report(&report, 0);
        assert_eq!(convenience.steps, direct.steps);
        assert_eq!(convenience.capped, direct.capped);
        assert_eq!((direct.from, direct.to), (0, 12));
    }

    #[test]
    fn hmax_label_pair_round_trips() {
        assert_eq!(hmax_label_pair("h(3->17)"), (3, 17));
    }
}
