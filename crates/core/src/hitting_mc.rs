//! Monte-Carlo hitting times and `h_max` estimation for graphs too large
//! for the `O(n³)` exact solver.
//!
//! Strategy for `h_max = max_{u,v} h(u,v)`:
//!
//! * **small graphs** — delegate to `mrw_spectral::hitting_times_all`
//!   (exact; the experiments use this up to ~800 vertices);
//! * **large graphs** — Monte-Carlo over candidate pairs. Scanning all
//!   `n(n−1)` pairs is hopeless, but on every family in the paper the
//!   maximizing pair is (or is tied with) a BFS-diametral pair, so we take
//!   the two-sweep endpoints plus a deterministic sample of far pairs and
//!   estimate each by simulation. The result is a lower bound on `h_max`
//!   that is tight on the paper's families — and the experiments that
//!   *depend* on `h_max` (Matthews sandwich, Baby-Matthews) also run the
//!   exact path on sizes where both are available to validate the MC one.

use mrw_graph::{algo, Graph};
use mrw_par::{par_map, par_map_chunks_with, SeedSequence};
use mrw_stats::precision::Trials;
use mrw_stats::Summary;

use crate::walk::{steps_to_hit, walk_rng};

/// Monte-Carlo estimate of `h(u,v)` from independent walks.
///
/// `cap` bounds each walk; capped trials are *discarded* (reported via
/// `capped`), so on slow graphs choose `cap ≫` the expected hitting time
/// or the estimate will be biased low.
#[derive(Debug, Clone)]
pub struct HitEstimate {
    /// Source vertex.
    pub from: u32,
    /// Target vertex.
    pub to: u32,
    /// Summary over un-capped trials.
    pub steps: Summary,
    /// Number of trials that hit the cap and were discarded.
    pub capped: usize,
}

/// Estimates `h(from, to)` by simulation.
///
/// `trials` accepts a plain count ([`Trials::Fixed`]) or a sequential
/// [`Precision`](mrw_stats::Precision) rule ([`Trials::Adaptive`]) that
/// stops the fan-out once the CI over *un-capped* walks is tight enough.
/// Trial `t`'s RNG stream depends only on `(seed, t)`, so both budgets are
/// bit-for-bit deterministic across thread counts — including the adaptive
/// consumed-trial count, which is checked only at wave boundaries.
///
/// ```
/// use mrw_core::hitting_mc::hitting_time_mc;
/// use mrw_core::Precision;
/// use mrw_graph::generators;
///
/// // h(0, 2) on the 4-cycle is d(n−d) = 2·2 = 4 exactly (antipodal pair).
/// let g = generators::cycle(4);
/// let rule = Precision::relative(0.2).with_min_trials(16).with_max_trials(512);
/// let est = hitting_time_mc(&g, 0, 2, rule, 1_000_000, 7, 2);
/// assert_eq!(est.capped, 0);
/// assert!((est.steps.count() as usize) < 512); // easy instance stops early
/// ```
pub fn hitting_time_mc(
    g: &Graph,
    from: u32,
    to: u32,
    trials: impl Into<Trials>,
    cap: u64,
    seed: u64,
    threads: usize,
) -> HitEstimate {
    let trials = trials.into();
    assert!(trials.cap() >= 1, "need at least one trial");
    assert!(
        algo::is_connected(g),
        "hitting times are infinite on a disconnected graph"
    );
    let seq = SeedSequence::new(seed).child(0x48495421);
    let one_trial = |t: usize| {
        let mut rng = walk_rng(seq.seed_for(t as u64));
        steps_to_hit(g, from, to, cap, &mut rng)
    };
    let results: Vec<Option<u64>> = match trials {
        Trials::Fixed(n) => par_map(n, threads, one_trial),
        Trials::Adaptive(rule) => par_map_chunks_with(
            rule.max_trials,
            threads,
            || (),
            |(), t| one_trial(t),
            |sofar: &[Option<u64>]| {
                let mut s = Summary::new();
                for &r in sofar.iter().flatten() {
                    s.push(r as f64);
                }
                if rule.satisfied_by(&s) {
                    0
                } else {
                    rule.next_wave(sofar.len())
                }
            },
        ),
    };
    let mut steps = Summary::new();
    let mut capped = 0usize;
    for r in results {
        match r {
            Some(s) => steps.push(s as f64),
            None => capped += 1,
        }
    }
    HitEstimate {
        from,
        to,
        steps,
        capped,
    }
}

/// Result of an `h_max` search.
#[derive(Debug, Clone)]
pub struct HmaxEstimate {
    /// The estimated maximum hitting time.
    pub hmax: f64,
    /// The pair attaining it.
    pub pair: (u32, u32),
    /// Whether the value is exact (spectral solve) or a Monte-Carlo lower
    /// bound over candidate pairs.
    pub exact: bool,
}

/// Vertex-count threshold below which [`hmax_estimate`] uses the exact
/// `O(n³)` fundamental-matrix solver.
pub const EXACT_HMAX_LIMIT: usize = 800;

/// Estimates `h_max(G)` (and the attaining pair).
///
/// Exact below [`EXACT_HMAX_LIMIT`]; otherwise Monte-Carlo over
/// diametral and sampled candidate pairs as described in the module docs,
/// with `trials` (fixed or adaptive) spent per candidate pair.
pub fn hmax_estimate(
    g: &Graph,
    trials: impl Into<Trials>,
    seed: u64,
    threads: usize,
) -> HmaxEstimate {
    let trials = trials.into();
    assert!(
        algo::is_connected(g),
        "h_max is infinite on a disconnected graph"
    );
    if g.n() <= EXACT_HMAX_LIMIT {
        let ht = mrw_spectral::hitting_times_all(g);
        let pair = ht.argmax();
        return HmaxEstimate {
            hmax: ht.hmax(),
            pair,
            exact: true,
        };
    }

    // Candidate pairs: two-sweep diametral endpoints in both orientations,
    // plus evenly spaced far pairs.
    let d0 = algo::bfs_distances(g, 0);
    let far1 = d0
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as u32)
        .expect("non-empty graph");
    let d1 = algo::bfs_distances(g, far1);
    let far2 = d1
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as u32)
        .expect("non-empty graph");

    let mut candidates = vec![(far1, far2), (far2, far1)];
    let stride = (g.n() / 4).max(1);
    for i in 0..4 {
        let u = ((i * stride) % g.n()) as u32;
        if u != far2 {
            candidates.push((u, far2));
        }
        if u != far1 {
            candidates.push((far1, u));
        }
    }

    // Cap: generous multiple of a cheap upper-scale proxy (m·n covers
    // h_max ≤ 2m·n from the standard commute-time bound... use 4mn).
    let cap = 4u64
        .saturating_mul(g.m() as u64)
        .saturating_mul(g.n() as u64)
        .max(1_000_000);

    let mut best = HmaxEstimate {
        hmax: 0.0,
        pair: (0, 0),
        exact: false,
    };
    for (i, &(u, v)) in candidates.iter().enumerate() {
        let est = hitting_time_mc(g, u, v, trials, cap, seed ^ (i as u64) << 32, threads);
        if est.steps.count() > 0 && est.steps.mean() > best.hmax {
            best.hmax = est.steps.mean();
            best.pair = (u, v);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;

    #[test]
    fn mc_matches_exact_on_cycle() {
        let n = 16;
        let g = generators::cycle(n);
        // h(0, 8) = 8 · 8 = 64 exactly.
        let est = hitting_time_mc(&g, 0, 8, 3000, 10_000_000, 77, 4);
        assert_eq!(est.capped, 0);
        let mean = est.steps.mean();
        assert!((mean - 64.0).abs() < 4.0, "mean {mean}");
    }

    #[test]
    fn small_graph_hmax_is_exact() {
        let g = generators::path(10);
        let e = hmax_estimate(&g, 10, 1, 2);
        assert!(e.exact);
        assert!((e.hmax - 81.0).abs() < 1e-6); // (n−1)² = 81
    }

    #[test]
    fn capped_trials_reported() {
        let g = generators::cycle(64);
        let est = hitting_time_mc(&g, 0, 32, 50, 3, 5, 2);
        assert_eq!(est.capped, 50);
        assert_eq!(est.steps.count(), 0);
    }

    #[test]
    fn deterministic() {
        let g = generators::torus_2d(5);
        let a = hitting_time_mc(&g, 0, 12, 64, 1_000_000, 9, 1);
        let b = hitting_time_mc(&g, 0, 12, 64, 1_000_000, 9, 4);
        assert_eq!(a.steps.mean(), b.steps.mean());
    }

    #[test]
    fn large_graph_takes_mc_path() {
        // Cycle of 1024 > EXACT_HMAX_LIMIT; hmax = (n/2)² = 262144; the
        // diametral candidates find exactly the antipodal pair.
        let g = generators::cycle(1024);
        let e = hmax_estimate(&g, 12, 3, 8);
        assert!(!e.exact);
        let expect = 512.0 * 512.0;
        assert!(
            e.hmax > expect * 0.6 && e.hmax < expect * 1.5,
            "hmax {} vs theory {expect}",
            e.hmax
        );
    }
}
