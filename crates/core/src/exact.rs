//! Exact k-walk cover times on small graphs by dynamic programming.
//!
//! Ground truth for the Monte-Carlo engine: the k-walk process is a Markov
//! chain on states `(positions, visited-mask)`. Since the visited mask only
//! ever gains bits, the chain is acyclic across masks: process masks in
//! decreasing popcount order, and within one mask solve the linear system
//! that couples the position tuples whose moves stay inside the mask.
//!
//! Complexity is `O(2ⁿ · (n^k)³)` — strictly a validator for `n ≲ 12,
//! k ≤ 3` — but on that domain it is *exact*, which no amount of sampling
//! is. The engine's estimators are tested against these values, and the
//! classical identities (`C(K_n) = (n−1)H_{n−1}`, `C(L_n) = n(n−1)/2`,
//! `C^k(K_n+loops) ≈ nH_n/k`) fall out as corollaries.

use mrw_graph::{algo, Graph};
use mrw_spectral::DenseMatrix;

/// Exact expected number of parallel rounds for `k` walks from `start` to
/// cover `g`.
///
/// # Panics
/// If the graph is disconnected, empty, or the state space
/// `2ⁿ·n^k` exceeds [`MAX_STATES`] (this is a brute-force validator, not
/// an estimator).
pub fn exact_kwalk_cover_time(g: &Graph, start: u32, k: usize) -> f64 {
    assert!(k >= 1, "need at least one walk");
    assert!(g.n() >= 1, "empty graph");
    assert!((start as usize) < g.n(), "start out of range");
    assert!(
        algo::is_connected(g),
        "cover time infinite on a disconnected graph"
    );
    let n = g.n();
    assert!(n <= 20, "exact solver limited to n ≤ 20, got {n}");
    let tuples = (n as u64).pow(k as u32);
    let states = tuples.saturating_mul(1u64 << n);
    assert!(
        states <= MAX_STATES,
        "state space {states} exceeds MAX_STATES = {MAX_STATES}; use the Monte-Carlo estimator"
    );

    if n == 1 {
        return 0.0;
    }

    // E[mask][tuple] = expected remaining rounds given visited `mask` and
    // walker positions encoded in `tuple` (base-n digits). Only tuples
    // whose positions all lie inside `mask` are reachable.
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let n_tuples = tuples as usize;
    let mut e: Vec<Vec<f64>> = vec![Vec::new(); 1usize << n];

    let decode = |tuple: usize| -> Vec<u32> {
        let mut t = tuple;
        (0..k)
            .map(|_| {
                let p = (t % n) as u32;
                t /= n;
                p
            })
            .collect()
    };
    let encode = |positions: &[u32]| -> usize {
        positions
            .iter()
            .rev()
            .fold(0usize, |acc, &p| acc * n + p as usize)
    };

    // Enumerate each walker's joint one-step distribution lazily: the joint
    // move space is the cartesian product of neighbor lists. For each
    // (mask, tuple) we need Σ over joint moves of P(move)·E[next]. Joint
    // move count = Π δ(p_i); bounded by maxdeg^k.
    let masks_by_popcount = {
        let mut m: Vec<u32> = (0..=full).collect();
        m.sort_by_key(|x| std::cmp::Reverse(x.count_ones()));
        m
    };

    for &mask in &masks_by_popcount {
        if mask == full {
            e[mask as usize] = vec![0.0; n_tuples];
            continue;
        }
        // Reachable tuples: all positions inside mask.
        let member = |p: u32| mask & (1 << p) != 0;
        let tuples_in: Vec<usize> = (0..n_tuples)
            .filter(|&t| decode(t).iter().all(|&p| member(p)))
            .collect();
        if tuples_in.is_empty() {
            e[mask as usize] = vec![f64::NAN; n_tuples];
            continue;
        }
        // BTreeMap, not HashMap: lookup-only here, but the deterministic
        // crates ban hash collections outright (analyzer rule D1).
        let index_of: std::collections::BTreeMap<usize, usize> =
            tuples_in.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        let dim = tuples_in.len();
        // (I − Q) x = 1 + r, where Q couples tuples staying in `mask` and
        // r accumulates transitions into strictly larger masks (already
        // solved).
        let mut a = DenseMatrix::identity(dim);
        let mut b = vec![1.0f64; dim];
        for (row, &t) in tuples_in.iter().enumerate() {
            let positions = decode(t);
            // Iterate the cartesian product of neighbor choices.
            let degs: Vec<usize> = positions.iter().map(|&p| g.degree(p)).collect();
            let joint: f64 = 1.0 / degs.iter().product::<usize>() as f64;
            let mut choice = vec![0usize; k];
            loop {
                let next: Vec<u32> = positions
                    .iter()
                    .zip(&choice)
                    .map(|(&p, &c)| g.neighbor(p, c))
                    .collect();
                let new_bits: u32 = next.iter().fold(0u32, |acc, &p| acc | (1 << p));
                let next_mask = mask | new_bits;
                let next_tuple = encode(&next);
                if next_mask == mask {
                    let col = index_of[&next_tuple];
                    a[(row, col)] -= joint;
                } else {
                    b[row] += joint * e[next_mask as usize][next_tuple];
                }
                // Increment the mixed-radix choice vector.
                let mut axis = 0;
                loop {
                    if axis == k {
                        break;
                    }
                    choice[axis] += 1;
                    if choice[axis] < degs[axis] {
                        break;
                    }
                    choice[axis] = 0;
                    axis += 1;
                }
                if axis == k {
                    break;
                }
            }
        }
        let x = a
            .solve(&b)
            .expect("within-mask system is substochastic, hence nonsingular");
        let mut values = vec![f64::NAN; n_tuples];
        for (i, &t) in tuples_in.iter().enumerate() {
            values[t] = x[i];
        }
        e[mask as usize] = values;
    }

    let start_mask = 1u32 << start;
    let start_tuple = encode(&vec![start; k]);
    e[start_mask as usize][start_tuple]
}

/// Hard ceiling on `2ⁿ·n^k` for [`exact_kwalk_cover_time`].
pub const MAX_STATES: u64 = 200_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{CoverTimeEstimator, EstimatorConfig};
    use mrw_graph::generators;
    use mrw_stats::harmonic::harmonic;

    const TOL: f64 = 1e-9;

    #[test]
    fn two_vertex_path_is_one_round() {
        let g = generators::path(2);
        assert!((exact_kwalk_cover_time(&g, 0, 1) - 1.0).abs() < TOL);
        // Two walks: still exactly 1 round (both must move to the other
        // vertex).
        assert!((exact_kwalk_cover_time(&g, 0, 2) - 1.0).abs() < TOL);
    }

    #[test]
    fn cycle_matches_gamblers_ruin() {
        // C(L_n) = n(n−1)/2 exactly.
        for n in [3usize, 4, 5, 6, 7] {
            let g = generators::cycle(n);
            let exact = exact_kwalk_cover_time(&g, 0, 1);
            let expect = (n * (n - 1)) as f64 / 2.0;
            assert!((exact - expect).abs() < 1e-7, "n={n}: {exact} vs {expect}");
        }
    }

    #[test]
    fn complete_graph_is_coupon_collector() {
        // C(K_n) = (n−1)·H_{n−1} (each step uniform over the other n−1).
        for n in [3usize, 4, 5, 6] {
            let g = generators::complete(n);
            let exact = exact_kwalk_cover_time(&g, 0, 1);
            let expect = (n as f64 - 1.0) * harmonic(n as u64 - 1);
            assert!((exact - expect).abs() < 1e-7, "n={n}: {exact} vs {expect}");
        }
    }

    #[test]
    fn complete_with_loops_k2_halves_coupon_collector_asymptotically() {
        // Lemma 12's mom argument is exact in total steps; in rounds the
        // k=2 time is within one round of nH_n/2.
        let n = 6;
        let g = generators::complete_with_loops(n);
        let exact = exact_kwalk_cover_time(&g, 0, 2);
        let cc = n as f64 * harmonic(n as u64);
        assert!(
            (exact - cc / 2.0).abs() < 1.0,
            "C² = {exact} vs nH_n/2 = {}",
            cc / 2.0
        );
    }

    #[test]
    fn star_single_walk_closed_form() {
        // Star S_n from the hub: the walk alternates hub/leaf; covering the
        // n−1 leaves is coupon collecting at 2 rounds per draw minus the
        // first-step subtlety... compare against brute Monte Carlo instead
        // of a human formula.
        let g = generators::star(5);
        let exact = exact_kwalk_cover_time(&g, 0, 1);
        let mc = CoverTimeEstimator::new(&g, 1, EstimatorConfig::new(6000).with_seed(5))
            .run_from(0)
            .mean();
        assert!(
            (exact - mc).abs() < exact * 0.05,
            "exact {exact} vs MC {mc}"
        );
    }

    #[test]
    fn monte_carlo_engine_agrees_with_exact_for_k_walks() {
        // The headline validation: MC estimator vs exact DP, several
        // graphs, k ∈ {1, 2}.
        for g in [
            generators::cycle(6),
            generators::path(6),
            generators::complete(5),
            generators::star(6),
            generators::balanced_tree(2, 2),
        ] {
            for k in [1usize, 2] {
                let exact = exact_kwalk_cover_time(&g, 0, k);
                let mc = CoverTimeEstimator::new(&g, k, EstimatorConfig::new(4000).with_seed(9))
                    .run_from(0)
                    .mean();
                let rel = (mc - exact).abs() / exact;
                assert!(
                    rel < 0.06,
                    "{} k={k}: exact {exact} vs MC {mc} (rel {rel})",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn k2_strictly_faster_than_k1_exactly() {
        let g = generators::cycle(6);
        let c1 = exact_kwalk_cover_time(&g, 0, 1);
        let c2 = exact_kwalk_cover_time(&g, 0, 2);
        assert!(c2 < c1, "exact C² = {c2} not below C¹ = {c1}");
        // And the speed-up on the cycle is below k = 2 (log-k regime).
        assert!(c1 / c2 < 2.0);
    }

    #[test]
    fn exact_speedup_on_clique_is_linear_even_tiny() {
        let g = generators::complete_with_loops(5);
        let c1 = exact_kwalk_cover_time(&g, 0, 1);
        let c2 = exact_kwalk_cover_time(&g, 0, 2);
        let s2 = c1 / c2;
        assert!((s2 - 2.0).abs() < 0.35, "S² = {s2}");
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_rejected() {
        let mut b = mrw_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        exact_kwalk_cover_time(&b.build("frag"), 0, 1);
    }

    #[test]
    #[should_panic(expected = "n ≤ 20")]
    fn oversized_rejected() {
        let g = generators::cycle(32);
        exact_kwalk_cover_time(&g, 0, 1);
    }
}
