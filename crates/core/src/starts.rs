//! Start-vertex distributions for k-walks.
//!
//! The paper's main setting starts all k walks at one (worst-case) vertex,
//! but §1.1 and §3 discuss the stationary-start variant: Broder et al.'s
//! s-t-connectivity analysis covers from k stationary-distributed starts in
//! `O(m² log³ n / k²)`, and the paper notes its own Lemma 19 improves this
//! to `O((n log n)/k)` on expanders ("our proofs in Section 4 do not depend
//! on the starting distribution"). This module provides the samplers the
//! stationary-start experiment needs.

use mrw_graph::Graph;
use rand::Rng;

/// Samples `k` i.i.d. vertices from the walk's stationary distribution
/// `π(v) = δ(v)/2m` by inverse-CDF over the degree prefix sums
/// (`O(n + k log n)`).
pub fn sample_stationary_starts<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Vec<u32> {
    assert!(k >= 1, "need at least one start");
    assert!(
        g.degree_sum() > 0,
        "stationary distribution undefined on an edgeless graph"
    );
    // Prefix sums of degrees; total = degree_sum.
    let mut prefix = Vec::with_capacity(g.n());
    let mut acc = 0u64;
    for v in 0..g.n() as u32 {
        acc += g.degree(v) as u64;
        prefix.push(acc);
    }
    let total = acc;
    (0..k)
        .map(|_| {
            let x = rng.gen_range(0..total);
            // First index with prefix > x.
            prefix.partition_point(|&p| p <= x) as u32
        })
        .collect()
}

/// Samples `k` i.i.d. uniform vertices (the stationary distribution of a
/// regular graph, and a common approximation elsewhere).
pub fn sample_uniform_starts<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Vec<u32> {
    assert!(k >= 1, "need at least one start");
    assert!(g.n() > 0, "empty graph");
    (0..k).map(|_| rng.gen_range(0..g.n()) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::walk_rng;
    use mrw_graph::generators;

    #[test]
    fn stationary_sampler_matches_degree_profile() {
        // Star: hub has π = 1/2, each leaf π = 1/(2(n−1)).
        let g = generators::star(9); // hub degree 8, 8 leaves
        let mut rng = walk_rng(3);
        let draws = 40_000;
        let starts = sample_stationary_starts(&g, draws, &mut rng);
        let hub_frac = starts.iter().filter(|&&v| v == 0).count() as f64 / draws as f64;
        assert!(
            (hub_frac - 0.5).abs() < 0.02,
            "hub sampled {hub_frac}, expected 0.5"
        );
    }

    #[test]
    fn regular_graph_stationary_is_uniform() {
        let g = generators::cycle(16);
        let mut rng = walk_rng(5);
        let draws = 64_000;
        let starts = sample_stationary_starts(&g, draws, &mut rng);
        let mut counts = [0usize; 16];
        for &s in &starts {
            counts[s as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let frac = c as f64 / draws as f64;
            assert!((frac - 1.0 / 16.0).abs() < 0.01, "vertex {v}: frac {frac}");
        }
    }

    #[test]
    fn uniform_sampler_in_range() {
        let g = generators::barbell(13);
        let mut rng = walk_rng(1);
        for &s in &sample_uniform_starts(&g, 500, &mut rng) {
            assert!((s as usize) < g.n());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::torus_2d(5);
        let a = sample_stationary_starts(&g, 10, &mut walk_rng(9));
        let b = sample_stationary_starts(&g, 10, &mut walk_rng(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one start")]
    fn zero_starts_rejected() {
        let g = generators::cycle(5);
        sample_stationary_starts(&g, 0, &mut walk_rng(0));
    }
}
