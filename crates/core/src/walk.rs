//! Single-walk primitives: the one-step sampler and convenience wrappers
//! over the unified [`engine`](crate::engine).
//!
//! A walk step picks a uniformly random neighbor of the current vertex —
//! `Pr(v → u) = 1/δ(v)` for `(v,u) ∈ E` (§2 of the paper). [`step`] is
//! that sampler (no allocation, one `gen_range` — or a mask on
//! power-of-two degrees). Everything else here ([`cover_time_single`],
//! [`steps_to_hit`], [`walk_trace`]) is the k = 1 specialization of the
//! engine and consumes the RNG stream identically to the pre-engine
//! hand-rolled loops.

use mrw_graph::GraphBackend;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Engine, FullCover, Hit, SimpleStep, Trace};

/// The RNG used by all walk engines (`SmallRng`: xoshiro256++ — fast,
/// seedable, good enough statistical quality for Monte-Carlo physics, and
/// deterministic across platforms for a fixed rand version).
pub type WalkRng = SmallRng;

/// Creates the walk RNG from a 64-bit seed.
pub fn walk_rng(seed: u64) -> WalkRng {
    SmallRng::seed_from_u64(seed)
}

/// One walk step from `pos`: a uniformly random neighbor.
///
/// Generic over [`GraphBackend`]: the RNG draws depend only on the
/// degree, and implicit rows are sorted identically to their CSR twins,
/// so seeded walks agree bit-for-bit across backends.
///
/// # Panics
/// (debug) if `pos` is isolated — callers must ensure connectivity.
#[inline]
pub fn step<G: GraphBackend, R: Rng + ?Sized>(g: &G, pos: u32, rng: &mut R) -> u32 {
    let d = g.degree(pos);
    debug_assert!(d > 0, "walk stuck at isolated vertex {pos}");
    // Power-of-two fast path: mask instead of modulo rejection.
    if d.is_power_of_two() {
        g.neighbor(pos, (rng.gen::<u32>() as usize) & (d - 1))
    } else {
        g.neighbor(pos, rng.gen_range(0..d))
    }
}

/// Number of steps for a single walk from `start` to visit every vertex
/// (the random variable `τ_i` of §2 whose expectation is `C_i`).
///
/// # Panics
/// If the graph is disconnected (`τ = ∞`) or empty.
pub fn cover_time_single<G: GraphBackend, R: Rng + ?Sized>(g: &G, start: u32, rng: &mut R) -> u64 {
    assert!(g.n() > 0, "cover time of the empty graph");
    assert!((start as usize) < g.n(), "start {start} out of range");
    debug_assert!(g.is_connected(), "cover time infinite: disconnected graph");
    Engine::new(g, SimpleStep, FullCover::new(g.n()))
        .run(&[start], rng)
        .rounds
}

/// Number of steps for a walk from `from` to first reach `to`
/// (the random variable behind `h(u,v)`); `0` when `from == to`.
///
/// `cap` bounds the simulation; returns `None` if `to` was not reached
/// within `cap` steps (used to keep Monte-Carlo hitting estimates bounded
/// on slow-mixing graphs).
pub fn steps_to_hit<G: GraphBackend, R: Rng + ?Sized>(
    g: &G,
    from: u32,
    to: u32,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    assert!(
        (from as usize) < g.n() && (to as usize) < g.n(),
        "vertex out of range"
    );
    let out = Engine::new(g, SimpleStep, Hit::new(to))
        .cap(cap)
        .run(&[from], rng);
    out.stopped.then_some(out.rounds)
}

/// Records the first `len` positions of a walk (including the start) —
/// used by tests to validate that walks respect the edge set.
pub fn walk_trace<G: GraphBackend, R: Rng + ?Sized>(
    g: &G,
    start: u32,
    len: usize,
    rng: &mut R,
) -> Vec<u32> {
    Engine::new(g, SimpleStep, Trace::new(len))
        .cap(len as u64)
        .run(&[start], rng)
        .observer
        .into_positions()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;

    #[test]
    fn trace_respects_edges() {
        let g = generators::barbell(13);
        let mut rng = walk_rng(1);
        let trace = walk_trace(&g, 0, 500, &mut rng);
        assert_eq!(trace.len(), 501);
        for w in trace.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "illegal move {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn cover_visits_everything() {
        // Re-run the walk with the same seed, tracking visits manually.
        let g = generators::cycle(32);
        let steps = cover_time_single(&g, 0, &mut walk_rng(7));
        let trace = walk_trace(&g, 0, steps as usize, &mut walk_rng(7));
        let mut seen = std::collections::BTreeSet::new();
        seen.extend(trace.iter().copied());
        assert_eq!(seen.len(), 32, "cover time returned before covering");
        // Minimality: the prefix of length steps-1 must miss some vertex.
        let mut prefix = std::collections::BTreeSet::new();
        prefix.extend(trace[..steps as usize].iter().copied());
        assert_eq!(prefix.len(), 31, "cover time not minimal");
    }

    #[test]
    fn two_vertex_graph_covers_in_one_step() {
        let g = generators::path(2);
        for seed in 0..10 {
            assert_eq!(cover_time_single(&g, 0, &mut walk_rng(seed)), 1);
        }
    }

    #[test]
    fn singleton_covers_instantly() {
        let g = generators::path(1);
        assert_eq!(cover_time_single(&g, 0, &mut walk_rng(0)), 0);
    }

    #[test]
    fn hit_self_is_zero() {
        let g = generators::cycle(5);
        assert_eq!(steps_to_hit(&g, 3, 3, 100, &mut walk_rng(0)), Some(0));
    }

    #[test]
    fn hit_cap_respected() {
        let g = generators::cycle(64);
        // 1 step cannot reach the antipode.
        assert_eq!(steps_to_hit(&g, 0, 32, 1, &mut walk_rng(0)), None);
    }

    #[test]
    fn hit_adjacent_mean_near_theory() {
        // On a cycle of n vertices, E[steps 0 -> 1] = n − 1... no: h(u,v)
        // for adjacent u,v on a cycle is n − 1. Sample mean should be close.
        let n = 16;
        let g = generators::cycle(n);
        let mut rng = walk_rng(42);
        let trials = 4000;
        let mut total = 0u64;
        for _ in 0..trials {
            total += steps_to_hit(&g, 0, 1, 1_000_000, &mut rng).unwrap();
        }
        let mean = total as f64 / trials as f64;
        let expect = (n - 1) as f64;
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs theory {expect}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::torus_2d(6);
        let a = cover_time_single(&g, 0, &mut walk_rng(99));
        let b = cover_time_single(&g, 0, &mut walk_rng(99));
        assert_eq!(a, b);
        let c = cover_time_single(&g, 0, &mut walk_rng(100));
        assert_ne!(a, c); // overwhelmingly likely
    }

    #[test]
    fn power_of_two_degree_fast_path_is_uniform() {
        // Torus: degree 4 everywhere — exercise the mask path and check the
        // one-step distribution is uniform-ish over 4 neighbors.
        let g = generators::torus_2d(5);
        let mut rng = walk_rng(5);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..40_000 {
            let nxt = step(&g, 0, &mut rng);
            *counts.entry(nxt).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (&v, &c) in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 500.0,
                "neighbor {v} hit {c} times"
            );
        }
    }

    #[test]
    fn cycle_cover_mean_matches_n_squared_over_two() {
        // C(cycle_n) = n(n−1)/2 exactly (gambler's ruin). n = 24, 600 trials:
        // relative SE ≈ cv/√trials; cover-time cv on a cycle ≈ 0.5.
        let n = 24;
        let g = generators::cycle(n);
        let mut rng = walk_rng(2024);
        let trials = 600;
        let mut total = 0u64;
        for _ in 0..trials {
            total += cover_time_single(&g, 0, &mut rng);
        }
        let mean = total as f64 / trials as f64;
        let expect = (n * (n - 1)) as f64 / 2.0; // 276
        assert!(
            (mean - expect).abs() < expect * 0.1,
            "mean {mean} vs theory {expect}"
        );
    }
}
