//! Meeting and pursuit times — the paper's opening metaphor, as an
//! engine.
//!
//! §1 of the paper opens with hunters tracking prey on a graph: "the prey
//! begins at one node, the hunters begin at other nodes, and in every
//! step each player can traverse an edge." Cover time answers the
//! worst-case version (find a prey that could be *anywhere*); this module
//! provides the direct game:
//!
//! * [`meeting_rounds`] — two simultaneous walks until they collide.
//!   Beware the parity trap: on a bipartite graph, two simple walks at
//!   odd distance can *never* meet (both flip sides every round) — the
//!   classical reason pursuit analyses use lazy walks. The
//!   process-parameterized variant accepts
//!   [`WalkProcess::Lazy`](crate::process::WalkProcess) to break parity.
//! * [`pursuit_rounds`] — `k` hunters versus one prey: [static
//!   (hiding)](PreyStrategy::Hide), [moving as a random
//!   walk](PreyStrategy::RandomWalk), or a [greedy
//!   evader](PreyStrategy::Adversarial). A catch happens whenever a
//!   hunter occupies the prey's vertex at the end of a half-step (hunters
//!   move, then prey moves), so a moving prey can also *blunder into* a
//!   hunter — except the adversarial one, which never steps onto an
//!   occupied vertex.
//!
//! Against a hiding prey, `k` hunters from one vertex catch in roughly
//! `h(u, v)/k`-ish time on fast-mixing graphs by the same union-bound
//! logic as Baby Matthews — the hunting experiment
//! ([`experiments::hunting`](crate::experiments::hunting)) measures that
//! speed-up next to the cover-time speed-up the paper proves.
//!
//! Monte-Carlo *estimation* of these games lives in the query layer
//! ([`Query::Meeting`](crate::query::Query) /
//! [`Query::Pursuit`](crate::query::Query)) — build a
//! [`Budget`](crate::query::Budget) and call
//! [`Session::pursuit`](crate::query::Session::pursuit). The two
//! single-game functions here are the primitives the
//! [`Session`](crate::query::Session) executor itself plays.

use mrw_graph::GraphBackend;
use mrw_stats::ci::{normal_ci, ConfidenceInterval};
use mrw_stats::Summary;
use rand::Rng;

use crate::engine::{CompiledProcess, Engine, Meeting, Pursuit, SimpleStep};
use crate::process::WalkProcess;
use crate::query::{Group, Report};

pub use crate::engine::PreyMove;

/// Rounds until two simultaneous walks of `process` collide (occupy the
/// same vertex after a round), or `None` if `cap` rounds pass first.
/// Returns `Some(0)` when the starts coincide.
///
/// # Panics
/// If either start is out of range.
pub fn meeting_rounds<G: GraphBackend, R: Rng + ?Sized>(
    g: &G,
    a: u32,
    b: u32,
    process: WalkProcess,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    assert!(
        (a as usize) < g.n() && (b as usize) < g.n(),
        "start out of range"
    );
    let out = Engine::new(g, CompiledProcess::new(process, g), Meeting::new())
        .cap(cap)
        .run(&[a, b], rng);
    out.stopped.then_some(out.rounds)
}

/// What the prey does each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreyStrategy {
    /// The prey stays put (a hider); catching it is a k-walk hitting
    /// problem. (CLI name: `stationary`.)
    Hide,
    /// The prey performs its own simple random walk. (CLI name:
    /// `uniform`.)
    RandomWalk,
    /// The prey greedily evades: it steps to a uniformly chosen neighbor
    /// not currently occupied by a hunter, staying put only when
    /// cornered. (CLI name: `adversarial`.)
    Adversarial,
}

/// Rounds for `k` hunters (simple random walks from `hunters`) to catch a
/// prey starting at `prey`, or `None` if `cap` rounds pass. A round is:
/// all hunters step, catch checked; prey steps (if moving), catch checked
/// again. Returns `Some(0)` if a hunter already starts on the prey.
///
/// ```
/// use mrw_core::meeting::{pursuit_rounds, PreyStrategy};
/// use mrw_core::walk_rng;
/// use mrw_graph::generators;
///
/// let g = generators::complete(16);
/// let caught = pursuit_rounds(&g, &[0, 0, 0], 9, PreyStrategy::Hide, 10_000, &mut walk_rng(4));
/// assert!(caught.is_some());
/// ```
///
/// # Panics
/// If `hunters` is empty or any vertex is out of range.
pub fn pursuit_rounds<G: GraphBackend, R: Rng + ?Sized>(
    g: &G,
    hunters: &[u32],
    prey: u32,
    strategy: PreyStrategy,
    cap: u64,
    rng: &mut R,
) -> Option<u64> {
    assert!(!hunters.is_empty(), "need at least one hunter");
    assert!((prey as usize) < g.n(), "prey out of range");
    for &h in hunters {
        assert!((h as usize) < g.n(), "hunter {h} out of range");
    }
    let prey_move = match strategy {
        PreyStrategy::Hide => PreyMove::Hide,
        PreyStrategy::RandomWalk => PreyMove::RandomWalk,
        PreyStrategy::Adversarial => PreyMove::Adversarial,
    };
    let out = Engine::new(g, SimpleStep, Pursuit::new(prey, prey_move))
        .cap(cap)
        .run(hunters, rng);
    out.stopped.then_some(out.rounds)
}

/// Summary of a Monte-Carlo pursuit experiment: a thin typed view over
/// one `k` group of a [`Query::Pursuit`](crate::query::Query)
/// [`Report`]. Censored games are counted at the cap, so
/// [`mean`](CatchEstimate::mean) is a lower bound whenever
/// [`censored`](CatchEstimate::censored) is nonzero.
///
/// The accessor surface matches
/// [`CoverEstimate`](crate::estimator::CoverEstimate) — `mean`,
/// `consumed_trials`, `ci`, `half_width`, `relative_half_width` — so
/// result handling is uniform across estimate kinds.
#[derive(Debug, Clone)]
pub struct CatchEstimate {
    k: usize,
    group: Group,
    confidence: f64,
}

impl CatchEstimate {
    /// Builds the typed view over one group of a
    /// [`Query::Pursuit`](crate::query::Query) report.
    ///
    /// # Panics
    /// If the report is for a different query kind or `group` is out of
    /// range.
    pub fn from_report(report: &Report, group: usize) -> CatchEstimate {
        use crate::query::Query;
        let k = match &report.query {
            Query::Pursuit { ks, .. } => ks[group],
            other => panic!("not a pursuit report: {}", other.kind()),
        };
        CatchEstimate {
            k,
            group: report.groups[group].clone(),
            confidence: report.confidence(),
        }
    }

    /// Number of hunters in this game.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-game catch rounds (censored games counted at the cap).
    pub fn rounds(&self) -> Summary {
        self.group.summary()
    }

    /// Number of games that hit the round cap without a catch.
    pub fn censored(&self) -> usize {
        self.group.censored as usize
    }

    /// Mean rounds to catch across the consumed games.
    pub fn mean(&self) -> f64 {
        self.group.mean()
    }

    /// Games actually played: the fixed count, or wherever the adaptive
    /// rule stopped.
    pub fn consumed_trials(&self) -> u64 {
        self.group.trials
    }

    /// Confidence interval around the mean at the report's level.
    pub fn ci(&self) -> ConfidenceInterval {
        normal_ci(&self.group.summary(), self.confidence)
    }

    /// Achieved CI half-width.
    pub fn half_width(&self) -> f64 {
        self.ci().half_width()
    }

    /// Achieved CI half-width relative to the point estimate.
    pub fn relative_half_width(&self) -> f64 {
        self.ci().relative_half_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Budget, Session};
    use crate::walk::walk_rng;
    use mrw_graph::generators;

    /// Plays `trials` pursuit games through the query layer with the
    /// historical `(trials, seed)` shape these tests were written against.
    #[allow(clippy::too_many_arguments)] // mirrors the historical signature
    fn catch(
        g: &mrw_graph::Graph,
        hunter_start: u32,
        prey: u32,
        k: usize,
        strategy: PreyStrategy,
        cap: u64,
        trials: impl Into<mrw_stats::Trials>,
        seed: u64,
    ) -> CatchEstimate {
        let (fixed, precision) = match trials.into() {
            mrw_stats::Trials::Fixed(n) => (n, None),
            mrw_stats::Trials::Adaptive(rule) => (rule.max_trials, Some(rule)),
        };
        let budget = Budget {
            trials: fixed,
            seed,
            precision,
            ..Budget::default()
        };
        Session::new(budget).pursuit(g, hunter_start, prey, k, strategy, cap)
    }

    #[test]
    fn same_start_meets_instantly() {
        let g = generators::cycle(8);
        assert_eq!(
            meeting_rounds(&g, 3, 3, WalkProcess::Simple, 10, &mut walk_rng(0)),
            Some(0)
        );
    }

    #[test]
    fn bipartite_parity_blocks_simple_meeting() {
        // Even cycle, odd start distance: simple walks flip sides every
        // round — they can NEVER meet. Deterministic impossibility.
        let g = generators::cycle(8);
        for seed in 0..20 {
            assert_eq!(
                meeting_rounds(&g, 0, 1, WalkProcess::Simple, 5_000, &mut walk_rng(seed)),
                None,
                "parity violated at seed {seed}"
            );
        }
    }

    #[test]
    fn laziness_breaks_parity() {
        let g = generators::cycle(8);
        let mut met = 0;
        for seed in 0..20 {
            if meeting_rounds(&g, 0, 1, WalkProcess::Lazy(0.5), 5_000, &mut walk_rng(seed))
                .is_some()
            {
                met += 1;
            }
        }
        assert_eq!(met, 20, "lazy walks failed to meet");
    }

    #[test]
    fn clique_meeting_time_is_about_n() {
        // On K_n+loops both walks land uniformly: collision prob 1/n per
        // round ⇒ mean ≈ n.
        let n = 24;
        let g = generators::complete_with_loops(n);
        let trials = 2000u64;
        let mut total = 0u64;
        for t in 0..trials {
            total += meeting_rounds(&g, 0, 1, WalkProcess::Simple, 100_000, &mut walk_rng(t))
                .expect("meets");
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - n as f64).abs() < n as f64 * 0.1,
            "mean {mean} vs n = {n}"
        );
    }

    #[test]
    fn hiding_prey_on_clique_is_hitting_time() {
        // One hunter on K_n+loops: catch prob 1/n per round ⇒ mean ≈ n.
        let n = 20;
        let g = generators::complete_with_loops(n);
        let est = catch(&g, 0, 7, 1, PreyStrategy::Hide, 1_000_000, 2000, 1);
        assert_eq!(est.censored(), 0);
        assert_eq!(est.consumed_trials(), 2000);
        let mean = est.mean();
        assert!((mean - n as f64).abs() < n as f64 * 0.1, "mean {mean}");
    }

    #[test]
    fn k_hunters_catch_hider_about_k_times_faster_on_clique() {
        let n = 32;
        let g = generators::complete_with_loops(n);
        let m1 = catch(&g, 0, 9, 1, PreyStrategy::Hide, 1_000_000, 1500, 2).mean();
        let m8 = catch(&g, 0, 9, 8, PreyStrategy::Hide, 1_000_000, 1500, 3).mean();
        let speedup = m1 / m8;
        // Per-round catch prob goes 1/n → 1−(1−1/n)^8 ≈ 8/n.
        assert!(
            (speedup - 8.0).abs() < 1.6,
            "hunting speed-up {speedup} not ≈ 8"
        );
    }

    #[test]
    fn moving_prey_caught_no_slower_than_half_speed_on_clique() {
        // On the loopy clique a moving prey doubles the collision checks
        // per round; the catch should not be slower than against a hider.
        let n = 24;
        let g = generators::complete_with_loops(n);
        let hide = catch(&g, 0, 5, 2, PreyStrategy::Hide, 1_000_000, 1500, 4).mean();
        let run = catch(&g, 0, 5, 2, PreyStrategy::RandomWalk, 1_000_000, 1500, 5).mean();
        assert!(
            run < hide * 1.1,
            "moving prey survived longer: {run} vs hider {hide}"
        );
    }

    #[test]
    fn adversarial_prey_never_blunders() {
        // On the cycle the evader can always step away from co-located
        // hunters, so a catch requires the hunters to walk onto it —
        // games still end (drift), but slower than against a blundering
        // uniform walker.
        let g = generators::cycle(16);
        let uniform = catch(&g, 0, 8, 3, PreyStrategy::RandomWalk, 1_000_000, 400, 6);
        let evader = catch(&g, 0, 8, 3, PreyStrategy::Adversarial, 1_000_000, 400, 6);
        assert_eq!(uniform.censored(), 0);
        assert_eq!(evader.censored(), 0);
        assert!(
            evader.mean() > uniform.mean(),
            "evader {} caught faster than uniform prey {}",
            evader.mean(),
            uniform.mean()
        );
    }

    #[test]
    fn adversarial_prey_on_two_vertex_graph_is_caught_in_one_round() {
        // K₂: the evader's only neighbor carries the hunter, so it is
        // cornered from the start — it must stay, and the hunter walks
        // onto it on the very first half-step. Deterministically Some(1).
        for g in [generators::path(2), generators::complete(2)] {
            for seed in 0..50 {
                assert_eq!(
                    pursuit_rounds(
                        &g,
                        &[0],
                        1,
                        PreyStrategy::Adversarial,
                        1_000,
                        &mut walk_rng(seed)
                    ),
                    Some(1),
                    "2-vertex game not deterministic at seed {seed}"
                );
            }
        }
    }

    #[test]
    fn adversarial_prey_at_star_center_with_ringed_leaves_is_caught_in_one_round() {
        // Prey on the hub, one hunter on every leaf: every neighbor is
        // occupied, so the evader is cornered and must stay; all hunters'
        // only move is leaf → hub. Some(1), every seed.
        let n = 7;
        let g = generators::star(n);
        let hunters: Vec<u32> = (1..n as u32).collect();
        for seed in 0..50 {
            assert_eq!(
                pursuit_rounds(
                    &g,
                    &hunters,
                    0,
                    PreyStrategy::Adversarial,
                    1_000,
                    &mut walk_rng(seed)
                ),
                Some(1),
                "ringed star center escaped at seed {seed}"
            );
        }
    }

    #[test]
    fn adversarial_prey_never_blunders_on_the_star() {
        // Hunter on leaf 1, evader on leaf 2 of a star. Round 1 the
        // hunter must step to the hub; the evader's only neighbor (the
        // hub) is then occupied, so it is cornered and stays — a round-1
        // catch is *impossible* unless the prey blunders into the hub.
        // Round 2 the hunter leaves the hub for a uniform leaf (catch iff
        // it picks the evader's); otherwise the hub is free, the evader
        // must move there, and the hunter's round-3 return to the hub
        // always catches it. So: Some(2) or Some(3), never Some(1) —
        // the "never blunders" law as an observable catch-time property.
        let g = generators::star(6);
        let (mut twos, mut threes) = (0, 0);
        for seed in 0..200 {
            match pursuit_rounds(
                &g,
                &[1],
                2,
                PreyStrategy::Adversarial,
                1_000,
                &mut walk_rng(seed),
            ) {
                Some(2) => twos += 1,
                Some(3) => threes += 1,
                other => panic!("adversarial star game ended with {other:?} at seed {seed}"),
            }
        }
        // Round 2 fires with probability 1/5 — both outcomes must occur.
        assert!(twos > 0 && threes > 0, "twos={twos} threes={threes}");

        // The discriminating contrast: a *uniform* prey blunders into the
        // hub-occupying hunter, so round-1 catches do happen.
        let round_one_blunders = (0..200)
            .filter(|&seed| {
                pursuit_rounds(
                    &g,
                    &[1],
                    2,
                    PreyStrategy::RandomWalk,
                    1_000,
                    &mut walk_rng(seed),
                ) == Some(1)
            })
            .count();
        assert!(
            round_one_blunders > 0,
            "uniform prey never blundered — the contrast is vacuous"
        );
    }

    #[test]
    fn adversarial_prey_cornered_by_full_occupation_stays_and_falls() {
        // K₃ with hunters on both non-prey vertices: every neighbor is
        // occupied every round the hunters stay put in aggregate — the
        // evader can only be taken by a hunter stepping onto it, and with
        // 2 hunters picking uniformly from 2 targets each round the game
        // ends fast. Checks the cornered branch under total occupation.
        let g = generators::complete(3);
        for seed in 0..30 {
            let rounds = pursuit_rounds(
                &g,
                &[0, 1],
                2,
                PreyStrategy::Adversarial,
                10_000,
                &mut walk_rng(seed),
            )
            .expect("cornered evader must fall");
            assert!(rounds >= 1);
        }
    }

    #[test]
    fn adversarial_prey_cornered_on_clique_still_caught() {
        // On K_n every hunter-free vertex is a neighbor, so the evader
        // keeps dodging; the union of k hunters still corners it in
        // roughly coupon-collector time. Mainly checks termination and
        // the cornered branch.
        let g = generators::complete(8);
        let est = catch(&g, 0, 5, 6, PreyStrategy::Adversarial, 100_000, 200, 7);
        assert_eq!(est.censored(), 0);
        assert!(est.mean() >= 0.0);
    }

    #[test]
    fn cap_censors() {
        let g = generators::cycle(64);
        // 1 round can't reach a distant prey.
        assert_eq!(
            pursuit_rounds(&g, &[0], 32, PreyStrategy::Hide, 1, &mut walk_rng(0)),
            None
        );
        let est = catch(&g, 0, 32, 1, PreyStrategy::Hide, 1, 10, 6);
        assert_eq!(est.censored(), 10);
        assert_eq!(est.mean(), 1.0);
    }

    #[test]
    fn adaptive_pursuit_stops_early_and_is_reproducible() {
        use mrw_stats::Precision;
        let g = generators::complete_with_loops(16);
        let rule = Precision::relative(0.2)
            .with_min_trials(16)
            .with_max_trials(4000);
        let run = || catch(&g, 0, 7, 2, PreyStrategy::Hide, 1_000_000, rule, 8);
        let a = run();
        let b = run();
        assert!(a.consumed_trials() < 4000, "never stopped early");
        assert!(a.consumed_trials() >= 16);
        assert_eq!(a.consumed_trials(), b.consumed_trials());
        assert_eq!(a.mean(), b.mean());
        // The unified ergonomics: a relative half-width is available and
        // consistent with the rule that stopped the run.
        assert!(a.relative_half_width() <= 0.2);
    }

    #[test]
    fn start_on_prey_is_instant_catch() {
        let g = generators::cycle(6);
        assert_eq!(
            pursuit_rounds(
                &g,
                &[2, 4],
                4,
                PreyStrategy::RandomWalk,
                10,
                &mut walk_rng(0)
            ),
            Some(0)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::torus_2d(6);
        let a = pursuit_rounds(
            &g,
            &[0, 0],
            20,
            PreyStrategy::RandomWalk,
            100_000,
            &mut walk_rng(9),
        );
        let b = pursuit_rounds(
            &g,
            &[0, 0],
            20,
            PreyStrategy::RandomWalk,
            100_000,
            &mut walk_rng(9),
        );
        assert_eq!(a, b);
    }
}
