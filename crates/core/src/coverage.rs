//! Coverage curves: fraction of vertices visited as a function of time.
//!
//! The cover time is the curve's hitting time of 1.0, but the whole curve
//! explains the paper's mechanisms: on the clique it is the smooth coupon-
//! collector saturation; on the barbell with small k it plateaus at ~½
//! (one bell covered, the other starving) before a late second rise; on
//! the cycle with large k all curves collapse onto each other because the
//! walks retread the same ground.

use mrw_graph::{algo, Graph};
use mrw_par::{par_map, SeedSequence};
use rand::Rng;

use crate::engine::{CoverageCurve, Engine, SimpleStep};
use crate::walk::walk_rng;

/// One trial's coverage trajectory: `fraction[t]` = fraction of vertices
/// visited after `t` rounds (index 0 = after placing the starts).
pub fn coverage_trajectory<R: Rng + ?Sized>(
    g: &Graph,
    starts: &[u32],
    rounds: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(!starts.is_empty(), "need at least one walk");
    debug_assert!(algo::is_connected(g), "coverage of a disconnected graph");
    Engine::new(g, SimpleStep, CoverageCurve::new(g.n(), rounds))
        .cap(rounds as u64)
        .run(starts, rng)
        .observer
        .into_curve()
}

/// Mean coverage curve over `trials` independent k-walks from `start`
/// (deterministic in `seed`; trials fan out over `threads`).
pub fn mean_coverage_curve(
    g: &Graph,
    start: u32,
    k: usize,
    rounds: usize,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    assert!(k >= 1 && trials >= 1);
    let seq = SeedSequence::new(seed).child(0xC0FE);
    let starts = vec![start; k];
    let curves: Vec<Vec<f64>> = par_map(trials, threads, |t| {
        let mut rng = walk_rng(seq.seed_for(t as u64));
        coverage_trajectory(g, &starts, rounds, &mut rng)
    });
    let mut mean = vec![0.0; rounds + 1];
    for curve in &curves {
        for (m, c) in mean.iter_mut().zip(curve) {
            *m += c;
        }
    }
    for m in mean.iter_mut() {
        *m /= trials as f64;
    }
    mean
}

/// First round at which the mean curve reaches `fraction`
/// (`None` if it never does within the horizon).
pub fn rounds_to_fraction(curve: &[f64], fraction: f64) -> Option<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    curve.iter().position(|&c| c >= fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;

    #[test]
    fn curve_is_monotone_and_bounded() {
        let g = generators::torus_2d(6);
        let mut rng = walk_rng(1);
        let curve = coverage_trajectory(&g, &[0, 0, 0, 0], 500, &mut rng);
        assert_eq!(curve.len(), 501);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0], "coverage decreased");
        }
        assert!(curve[0] > 0.0 && curve[0] < 0.1);
        assert!(*curve.last().unwrap() <= 1.0);
    }

    #[test]
    fn full_coverage_reached_on_small_graph() {
        let g = generators::complete(16);
        let curve = mean_coverage_curve(&g, 0, 4, 200, 16, 3, 2);
        assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
        let t90 = rounds_to_fraction(&curve, 0.9).unwrap();
        let t50 = rounds_to_fraction(&curve, 0.5).unwrap();
        assert!(t90 >= t50);
    }

    #[test]
    fn more_walks_cover_faster_at_fixed_round() {
        let g = generators::torus_2d(8);
        let c1 = mean_coverage_curve(&g, 0, 1, 100, 32, 5, 4);
        let c8 = mean_coverage_curve(&g, 0, 8, 100, 32, 5, 4);
        assert!(
            c8[50] > c1[50] + 0.1,
            "k=8 coverage {} vs k=1 {} at round 50",
            c8[50],
            c1[50]
        );
    }

    #[test]
    fn barbell_small_k_plateaus_at_half() {
        // One walk from the center: by the time one bell is covered the
        // other is (usually) untouched — coverage sits near 0.5 for a
        // long stretch.
        let n = 65;
        let g = generators::barbell(n);
        let vc = generators::barbell_center(n);
        let horizon = 800; // ≪ Θ(n²) escape time
        let curve = mean_coverage_curve(&g, vc, 1, horizon, 48, 7, 4);
        let mid = curve[horizon];
        assert!(
            mid > 0.35 && mid < 0.75,
            "expected ~half coverage plateau, got {mid}"
        );
    }

    #[test]
    fn deterministic() {
        let g = generators::cycle(32);
        let a = mean_coverage_curve(&g, 0, 2, 50, 8, 9, 1);
        let b = mean_coverage_curve(&g, 0, 2, 50, 8, 9, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn rounds_to_fraction_edge_cases() {
        let curve = vec![0.1, 0.5, 0.9, 1.0];
        assert_eq!(rounds_to_fraction(&curve, 0.0), Some(0));
        assert_eq!(rounds_to_fraction(&curve, 0.5), Some(1));
        assert_eq!(rounds_to_fraction(&curve, 1.0), Some(3));
        let partial = vec![0.1, 0.2];
        assert_eq!(rounds_to_fraction(&partial, 0.99), None);
    }
}
