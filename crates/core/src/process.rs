//! Generalized walk processes: lazy and Metropolis–Hastings chains.
//!
//! The paper analyzes the *simple* random walk, but two variants appear
//! inside its own proofs and conclusions, so the library supports them as
//! first-class processes:
//!
//! * **Lazy walks** — stay put with probability `p`, else take a simple
//!   step. Theorem 24's lower bound projects a torus k-walk onto one axis,
//!   producing exactly the `(¼ left, ¼ right, ½ stay)` lazy cycle walk;
//!   [`MixingConfig::lazy`](mrw_spectral::mixing::MixingConfig) needs the
//!   same chain to define mixing on bipartite families. Laziness rescales
//!   time but not geometry: every lazy cover/hitting time is the simple
//!   one times `1/(1−p)` in expectation.
//! * **Metropolis walks** — from `v` propose a uniform neighbor `u`,
//!   accept with probability `min(1, δ(v)/δ(u))`, else stay. The chain's
//!   stationary distribution is *uniform* on any connected graph, which is
//!   the natural fix when irregular topologies (barbell, Barabási–Albert)
//!   trap simple walks in high-degree regions — the §8 open question of
//!   what graph property really controls the speed-up, probed from the
//!   algorithm side.
//!
//! [`WalkProcess::Simple`] reproduces [`walk::step`](crate::walk::step)
//! exactly (same RNG consumption), so process-parameterized experiment
//! code can replace direct engine calls without changing any seeded
//! result.
//!
//! [`WalkProcess::step`] is the *uncached reference* kernel. The engine
//! runs [`crate::engine::CompiledProcess`] instead,
//! which pre-builds per-process state: a cached `Bernoulli` for lazy
//! holds (one integer compare per step instead of an `f64` conversion —
//! ~35% faster on the torus, see `benches/engine.rs`) and
//! degree-reciprocal tables for Metropolis acceptance. The lazy cache
//! changes which RNG bits decide a hold, so seeded `Lazy` traces differ
//! from the pre-engine seed implementation — an intentional change; the
//! law is unchanged (KS-tested in `engine::tests`). Compilation happens
//! once per run (regression-pinned by `tests/zero_alloc.rs`), and every
//! compiled kernel additionally carries a batched `step_bits` twin that
//! consumes pre-drawn RNG blocks on the engine's bucket sweep — the
//! cached Bernoulli threshold and reciprocal tables are reused there,
//! never re-derived. `WalkProcess` itself stays scalar-only so the
//! reference can never be routed onto the path it is meant to check.

use mrw_graph::{Graph, GraphBackend};
use rand::Rng;

use crate::engine::{CompiledProcess, Engine, FullCover};
use crate::walk::step;

/// A single-token walk process on a graph.
///
/// ```
/// use mrw_core::process::{cover_time_process, WalkProcess};
/// use mrw_core::walk_rng;
/// use mrw_graph::generators;
///
/// let g = generators::cycle(16);
/// let steps = cover_time_process(&g, 0, WalkProcess::Lazy(0.5), &mut walk_rng(7));
/// assert!(steps > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkProcess {
    /// The paper's simple random walk: uniform over neighbors.
    Simple,
    /// Lazy walk: hold with probability `p ∈ [0,1)`, else simple step.
    Lazy(f64),
    /// Metropolis–Hastings walk targeting the uniform distribution.
    Metropolis,
}

impl WalkProcess {
    /// One step of the process from `pos`.
    ///
    /// # Panics
    /// (debug) if `pos` is isolated; `Lazy(p)` asserts `p ∈ [0,1)` —
    /// `p = 1` never moves and would loop forever in cover routines.
    #[inline]
    pub fn step<G: GraphBackend, R: Rng + ?Sized>(&self, g: &G, pos: u32, rng: &mut R) -> u32 {
        match *self {
            WalkProcess::Simple => step(g, pos, rng),
            WalkProcess::Lazy(p) => {
                debug_assert!((0.0..1.0).contains(&p), "hold probability {p} not in [0,1)");
                if rng.gen::<f64>() < p {
                    pos
                } else {
                    step(g, pos, rng)
                }
            }
            WalkProcess::Metropolis => {
                let proposal = step(g, pos, rng);
                if proposal == pos {
                    return pos; // self-loop proposal: always "accepted"
                }
                let dv = g.degree(pos) as f64;
                let du = g.degree(proposal) as f64;
                // Accept with min(1, δ(v)/δ(u)); uphill-in-degree moves are
                // damped so that π is uniform.
                if du <= dv || rng.gen::<f64>() < dv / du {
                    proposal
                } else {
                    pos
                }
            }
        }
    }

    /// The stationary distribution of the process on `g`.
    ///
    /// `Simple` and `Lazy` share `π(v) = δ(v)/Σδ`; `Metropolis` is uniform.
    /// (Laziness changes eigenvalues, never `π`.)
    pub fn stationary(&self, g: &Graph) -> Vec<f64> {
        let n = g.n();
        assert!(n > 0, "stationary distribution of the empty graph");
        match self {
            WalkProcess::Simple | WalkProcess::Lazy(_) => {
                let total = g.degree_sum() as f64;
                (0..n as u32).map(|v| g.degree(v) as f64 / total).collect()
            }
            WalkProcess::Metropolis => vec![1.0 / n as f64; n],
        }
    }

    /// Short label for tables and bench IDs.
    pub fn label(&self) -> String {
        match self {
            WalkProcess::Simple => "simple".into(),
            WalkProcess::Lazy(p) => format!("lazy({p:.2})"),
            WalkProcess::Metropolis => "metropolis".into(),
        }
    }
}

/// Steps for a single token of `process` to cover `g` from `start` — the
/// process-generalized [`cover_time_single`](crate::walk::cover_time_single).
///
/// # Panics
/// If the graph is empty/disconnected or `start` is out of range.
pub fn cover_time_process<G: GraphBackend, R: Rng + ?Sized>(
    g: &G,
    start: u32,
    process: WalkProcess,
    rng: &mut R,
) -> u64 {
    assert!(g.n() > 0, "cover time of the empty graph");
    assert!((start as usize) < g.n(), "start {start} out of range");
    debug_assert!(g.is_connected(), "cover time infinite: disconnected graph");
    if let WalkProcess::Lazy(p) = process {
        // p = 1 never moves: the cover time is infinite.
        assert!((0.0..1.0).contains(&p), "hold probability {p} not in [0,1)");
    }
    Engine::new(g, CompiledProcess::new(process, g), FullCover::new(g.n()))
        .run(&[start], rng)
        .rounds
}

/// Parallel rounds for `k` tokens of `process` (round-synchronous, one
/// start per token) to cover `g` — the process-generalized
/// [`kwalk_cover_rounds`](crate::kwalk::kwalk_cover_rounds).
///
/// # Panics
/// As [`cover_time_process`], plus if `starts` is empty.
pub fn kwalk_cover_rounds_process<G: GraphBackend, R: Rng + ?Sized>(
    g: &G,
    starts: &[u32],
    process: WalkProcess,
    rng: &mut R,
) -> u64 {
    assert!(!starts.is_empty(), "need at least one walk");
    assert!(g.n() > 0, "cover time of the empty graph");
    for &s in starts {
        assert!((s as usize) < g.n(), "start {s} out of range");
    }
    debug_assert!(g.is_connected(), "cover time infinite: disconnected graph");
    if let WalkProcess::Lazy(p) = process {
        // p = 1 never moves: the cover time is infinite.
        assert!((0.0..1.0).contains(&p), "hold probability {p} not in [0,1)");
    }
    Engine::new(g, CompiledProcess::new(process, g), FullCover::new(g.n()))
        .run(starts, rng)
        .rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{cover_time_single, walk_rng};
    use mrw_graph::generators;

    #[test]
    fn simple_process_is_bitwise_the_simple_walk() {
        let g = generators::torus_2d(5);
        let a = cover_time_process(&g, 0, WalkProcess::Simple, &mut walk_rng(8));
        let b = cover_time_single(&g, 0, &mut walk_rng(8));
        assert_eq!(a, b);
    }

    #[test]
    fn lazy_cover_scales_by_one_over_one_minus_p() {
        // E[lazy cover] = E[simple cover]/(1−p): each lazy step advances
        // the embedded simple walk with probability 1−p.
        let g = generators::cycle(24);
        let trials = 400u64;
        let mean = |process: WalkProcess, base: u64| -> f64 {
            let mut total = 0u64;
            for t in 0..trials {
                total += cover_time_process(&g, 0, process, &mut walk_rng(base + t));
            }
            total as f64 / trials as f64
        };
        let simple = mean(WalkProcess::Simple, 100);
        let lazy = mean(WalkProcess::Lazy(0.5), 9000);
        let ratio = lazy / simple;
        assert!(
            (ratio - 2.0).abs() < 0.25,
            "lazy/simple = {ratio}, want ≈ 2"
        );
    }

    #[test]
    fn lazy_zero_behaves_like_simple_in_mean() {
        let g = generators::complete(12);
        let trials = 300u64;
        let mut s = 0u64;
        let mut l = 0u64;
        for t in 0..trials {
            s += cover_time_process(&g, 0, WalkProcess::Simple, &mut walk_rng(t));
            l += cover_time_process(&g, 0, WalkProcess::Lazy(0.0), &mut walk_rng(5000 + t));
        }
        let rel = (s as f64 - l as f64).abs() / s as f64;
        assert!(rel < 0.1, "simple {s} vs lazy(0) {l}");
    }

    #[test]
    fn metropolis_on_regular_graph_is_simple_walk_in_law() {
        // All acceptance ratios are 1 on a regular graph.
        let g = generators::torus_2d(5);
        let trials = 300u64;
        let mut s = 0u64;
        let mut m = 0u64;
        for t in 0..trials {
            s += cover_time_process(&g, 0, WalkProcess::Simple, &mut walk_rng(t));
            m += cover_time_process(&g, 0, WalkProcess::Metropolis, &mut walk_rng(7000 + t));
        }
        let rel = (s as f64 - m as f64).abs() / s as f64;
        assert!(rel < 0.1, "simple {s} vs metropolis {m}");
    }

    #[test]
    fn metropolis_long_run_frequencies_are_uniform_on_star() {
        // Simple walk on a star spends half its time at the hub; the
        // Metropolis walk must flatten that to 1/n each.
        let g = generators::star(9); // hub 0, 8 leaves
        let mut rng = walk_rng(31);
        let mut counts = vec![0u64; g.n()];
        let mut pos = 0u32;
        let steps = 400_000u64;
        for _ in 0..steps {
            pos = WalkProcess::Metropolis.step(&g, pos, &mut rng);
            counts[pos as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let freq = c as f64 / steps as f64;
            assert!(
                (freq - 1.0 / 9.0).abs() < 0.01,
                "vertex {v}: frequency {freq} ≠ 1/9"
            );
        }
    }

    #[test]
    fn simple_long_run_frequencies_match_degree_stationary() {
        let g = generators::star(9);
        let mut rng = walk_rng(32);
        let mut hub = 0u64;
        let mut pos = 0u32;
        let steps = 200_000u64;
        for _ in 0..steps {
            pos = WalkProcess::Simple.step(&g, pos, &mut rng);
            if pos == 0 {
                hub += 1;
            }
        }
        let freq = hub as f64 / steps as f64;
        assert!((freq - 0.5).abs() < 0.01, "hub frequency {freq} ≠ 1/2");
    }

    #[test]
    fn stationary_vectors() {
        let g = generators::barbell(11);
        for process in [
            WalkProcess::Simple,
            WalkProcess::Lazy(0.3),
            WalkProcess::Metropolis,
        ] {
            let pi = process.stationary(&g);
            let sum: f64 = pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{}: Σπ = {sum}", process.label());
        }
        let uniform = WalkProcess::Metropolis.stationary(&g);
        assert!(uniform.iter().all(|&p| (p - 1.0 / 11.0).abs() < 1e-12));
        let simple = WalkProcess::Simple.stationary(&g);
        assert!(
            simple[generators::barbell_center(11) as usize] < simple[0],
            "center must carry less stationary mass than a bell vertex"
        );
    }

    #[test]
    fn kwalk_process_simple_matches_kwalk_engine_moments() {
        let g = generators::hypercube(4);
        let trials = 200u64;
        let mut a = 0u64;
        let mut b = 0u64;
        for t in 0..trials {
            a += kwalk_cover_rounds_process(
                &g,
                &[0, 0, 0, 0],
                WalkProcess::Simple,
                &mut walk_rng(t),
            );
            b += crate::kwalk::kwalk_cover_rounds(
                &g,
                &[0, 0, 0, 0],
                crate::kwalk::KWalkMode::RoundSynchronous,
                &mut walk_rng(40_000 + t),
            );
        }
        let rel = (a as f64 - b as f64).abs() / b as f64;
        assert!(rel < 0.1, "process engine {a} vs kwalk engine {b}");
    }

    #[test]
    fn lazy_cycle_is_thm24_projection_chain() {
        // The Theorem 24 chain: ¼ left, ¼ right, ½ stay = Lazy(1/2) on the
        // cycle. Its cover time should be ≈ 2 × the simple cycle cover.
        let n = 20;
        let g = generators::cycle(n);
        let trials = 400u64;
        let mut total = 0u64;
        for t in 0..trials {
            total += cover_time_process(&g, 0, WalkProcess::Lazy(0.5), &mut walk_rng(t));
        }
        let mean = total as f64 / trials as f64;
        let expect = (n * (n - 1)) as f64; // 2 · n(n−1)/2
        assert!(
            (mean - expect).abs() < expect * 0.12,
            "lazy cycle cover {mean} vs {expect}"
        );
    }

    #[test]
    #[should_panic(expected = "not in [0,1)")]
    fn lazy_one_rejected() {
        let g = generators::cycle(5);
        cover_time_process(&g, 0, WalkProcess::Lazy(1.0), &mut walk_rng(0));
    }

    #[test]
    fn kwalk_process_more_walks_faster() {
        let g = generators::cycle(40);
        let trials = 150u64;
        let mean = |k: usize| -> f64 {
            let starts = vec![0u32; k];
            let mut total = 0u64;
            for t in 0..trials {
                total += kwalk_cover_rounds_process(
                    &g,
                    &starts,
                    WalkProcess::Metropolis,
                    &mut walk_rng(300 + t),
                );
            }
            total as f64 / trials as f64
        };
        assert!(mean(8) < mean(1), "k=8 not faster under Metropolis");
    }
}
