//! Cross-backend determinism suite: the implicit arithmetic backends
//! must be *indistinguishable* from materialized CSR at the report level.
//!
//! For every family with an implicit twin, `Session::run` must produce
//! JSON-byte-identical reports across:
//!
//! * backend — CSR arrays vs closed-form neighborhoods;
//! * stepping discipline — round-synchronous and interleaved;
//! * engine path — scalar (`BatchMode::Never`) and batched counter
//!   expansion (`BatchMode::Always`);
//! * worker threads — 1, 2 and 4.
//!
//! That is the contract that lets the CLI auto-switch oversized specs to
//! `--backend implicit` without changing a single reported byte; the
//! resolve-layer tests at the bottom pin the switch (and its friendly
//! refusal) itself.

use mrw_core::engine::BatchMode;
use mrw_core::kwalk::KWalkMode;
use mrw_core::query::{
    AnyGraph, BackendChoice, Budget, GraphSpec, Query, Session, AUTO_IMPLICIT_BYTES, MAX_CSR_BYTES,
};
use mrw_graph::{generators, GraphBackend, ImplicitGraph};

/// Every implicit family at sizes where CSR comfortably materializes.
fn twin_pairs() -> Vec<(mrw_graph::Graph, ImplicitGraph)> {
    vec![
        (generators::cycle(48), ImplicitGraph::cycle(48)),
        (generators::torus_2d(7), ImplicitGraph::torus_2d(7)),
        (generators::hypercube(5), ImplicitGraph::hypercube(5)),
        (
            generators::circulant(40, &[1, 7]),
            ImplicitGraph::circulant(40, &[1, 7]),
        ),
    ]
}

#[test]
fn reports_byte_identical_across_backends_disciplines_batches_threads() {
    for (csr, implicit) in &twin_pairs() {
        assert_eq!(csr.name(), implicit.name(), "twin name contract");
        let queries = [
            Query::Cover {
                k: 4,
                starts: vec![0, (csr.n() / 2) as u32],
            },
            Query::PartialCover {
                k: 3,
                start: 1,
                gammas: vec![0.5, 0.9],
            },
        ];
        for query in &queries {
            for mode in [KWalkMode::RoundSynchronous, KWalkMode::Interleaved] {
                for batch in [BatchMode::Never, BatchMode::Always] {
                    let budget = |threads| Budget {
                        trials: 5,
                        seed: 23,
                        threads,
                        batch,
                        mode,
                        ..Budget::default()
                    };
                    let baseline = Session::new(budget(1)).run(csr, query).to_json();
                    for threads in [1usize, 2, 4] {
                        let c = Session::new(budget(threads)).run(csr, query).to_json();
                        let i = Session::new(budget(threads)).run(implicit, query).to_json();
                        assert_eq!(
                            c,
                            i,
                            "{} {query:?} {mode:?} {batch:?} t={threads}: backend divergence",
                            csr.name()
                        );
                        assert_eq!(
                            c,
                            baseline,
                            "{} {query:?} {mode:?} {batch:?} t={threads}: thread divergence",
                            csr.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn resolved_backends_agree_with_handwritten_twins() {
    // The spec layer's auto-switch must hand `Session` the same graphs
    // the twins above hand-build: resolve both ways and compare reports.
    let spec = GraphSpec::new("torus", 6);
    let csr = GraphSpec {
        backend: BackendChoice::Csr,
        ..spec.clone()
    }
    .resolve()
    .expect("small torus materializes");
    let implicit = GraphSpec {
        backend: BackendChoice::Implicit,
        ..spec
    }
    .resolve()
    .expect("torus has an implicit twin");
    assert!(matches!(csr, AnyGraph::Csr(_)));
    assert!(matches!(implicit, AnyGraph::Implicit(_)));
    let q = Query::Cover {
        k: 2,
        starts: vec![0],
    };
    let budget = Budget {
        trials: 4,
        seed: 9,
        ..Budget::default()
    };
    let a = Session::new(budget.clone()).run(&csr, &q).to_json();
    let b = Session::new(budget).run(&implicit, &q).to_json();
    assert_eq!(a, b);
}

// --- GraphSpec::resolve: the oversized-`--n` UX contract ------------------

/// A cycle spec whose CSR estimate exceeds the hard guard (16 bytes per
/// vertex, so 2²⁷ vertices ≈ 2.1 GiB > 1.5 GiB).
fn oversized_cycle() -> GraphSpec {
    let spec = GraphSpec::new("cycle", 1 << 27);
    assert!(spec.csr_bytes_estimate() > MAX_CSR_BYTES);
    spec
}

#[test]
fn oversized_csr_refusal_suggests_the_implicit_backend() {
    let err = GraphSpec {
        backend: BackendChoice::Csr,
        ..oversized_cycle()
    }
    .resolve()
    .expect_err("estimate above the guard must refuse, not allocate");
    assert!(
        err.contains("--backend implicit"),
        "refusal must point at the fix: {err}"
    );
    assert!(err.contains("MiB"), "refusal must quantify the ask: {err}");
}

#[test]
fn oversized_csr_refusal_without_a_twin_says_so() {
    let spec = GraphSpec {
        backend: BackendChoice::Csr,
        ..GraphSpec::new("clique", 40_000)
    };
    assert!(spec.csr_bytes_estimate() > MAX_CSR_BYTES);
    let err = spec.resolve().expect_err("oversized clique must refuse");
    assert!(
        err.contains("no implicit backend"),
        "clique has no arithmetic rows; the error must not dangle a flag \
         that cannot work: {err}"
    );
}

#[test]
fn auto_backend_switches_to_implicit_above_the_threshold() {
    // Above the auto threshold but below the hard guard: auto goes
    // implicit without touching CSR memory.
    let spec = GraphSpec::new("cycle", 1 << 23);
    let estimate = spec.csr_bytes_estimate();
    assert!(estimate > AUTO_IMPLICIT_BYTES && estimate <= MAX_CSR_BYTES);
    assert!(matches!(
        spec.resolve().expect("auto resolves"),
        AnyGraph::Implicit(_)
    ));
    // Small stays CSR — materialized arrays are the faster engine path.
    assert!(matches!(
        GraphSpec::new("cycle", 1 << 10).resolve().expect("small"),
        AnyGraph::Csr(_)
    ));
    // Auto with no twin and an oversized estimate: same refusal as csr.
    let err = GraphSpec::new("clique", 40_000)
        .resolve()
        .expect_err("auto cannot save a family without a twin");
    assert!(err.contains("no implicit backend"), "{err}");
}

/// Peak resident set (VmHWM) of this process in KiB, from
/// `/proc/self/status` — Linux-only, which is fine for an `#[ignore]`d
/// capacity probe.
fn vm_hwm_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("VmHWM line")
}

/// The beyond-RAM headline: a partial-cover estimate on a 10⁸-vertex
/// torus through the implicit backend, peak RSS under 1 GiB. The same
/// spec refuses to materialize as CSR (≈1.9 GiB of arrays). Run with
/// `cargo test -p mrw-core --test backend_equivalence --release -- --ignored`.
#[test]
#[ignore = "capacity probe: ~10⁸-vertex run, seconds in release, minutes in debug"]
fn hundred_million_vertex_torus_fits_under_a_gigabyte() {
    let spec = GraphSpec {
        backend: BackendChoice::Implicit,
        ..GraphSpec::new("torus", 10_000)
    };
    assert!(
        spec.csr_bytes_estimate() > MAX_CSR_BYTES,
        "the CSR route must genuinely be impossible for this claim to mean anything"
    );
    let g = spec.resolve().expect("implicit torus at any side");
    assert_eq!(g.n(), 100_000_000);
    let report = Session::new(Budget {
        trials: 2,
        seed: 5,
        ..Budget::default()
    })
    .run(
        &g,
        &Query::PartialCover {
            k: 64,
            start: 0,
            gammas: vec![1e-6],
        },
    );
    // γn = 100 vertices reached, a real (if tiny) estimate.
    assert!(report.is_complete());
    assert!(report.mean() > 0.0);
    let hwm_kib = vm_hwm_kib();
    assert!(
        hwm_kib < (1 << 20),
        "peak RSS {hwm_kib} KiB breaches the 1 GiB beyond-RAM budget"
    );
}

#[test]
fn explicit_implicit_for_unsupported_family_errors() {
    let err = GraphSpec {
        backend: BackendChoice::Implicit,
        ..GraphSpec::new("barbell", 101)
    }
    .resolve()
    .expect_err("barbell has no closed-form rows");
    assert!(err.contains("no implicit backend"), "{err}");
}
