//! Property/fuzz-style tests for the query layer's JSON codec.
//!
//! Two families:
//!
//! * **Round-trip**: generated [`Report`]s — including `u64`/`u128`
//!   boundary moments that a float-based codec would silently corrupt —
//!   survive `to_json → from_json` exactly, and the rendering is
//!   canonical (`from_json → to_json` is byte-stable).
//! * **Malformed corpus**: overlapping coverage, inconsistent moments,
//!   truncated documents, non-finite floats, and random byte mutations
//!   all produce `Err` (or, for mutations that happen to stay valid, a
//!   clean parse) — **never** a panic.

use mrw_core::query::{Budget, Coverage, GraphInfo, Group, Query, Report};
use mrw_stats::IntMoments;
use proptest::prelude::*;

/// The documented exact-arithmetic domain of `IntMoments`: samples below
/// `2^40`, so `n·Σx²` stays inside `u128` at any realistic count.
const SAMPLE_CAP: u64 = 1 << 40;

/// Builds a self-consistent report around the given per-group samples.
fn report_from_samples(seed: u64, samples: &[Vec<u64>], censored: u64) -> Report {
    let groups: Vec<Group> = samples
        .iter()
        .enumerate()
        .map(|(i, xs)| {
            let mut moments = IntMoments::new();
            for &x in xs {
                moments.push(x);
            }
            Group {
                label: format!("start={i}"),
                trials: xs.len() as u64 + censored,
                moments,
                censored,
            }
        })
        .collect();
    let trials = samples.iter().map(Vec::len).max().unwrap_or(1).max(1) + censored as usize;
    Report {
        graph: GraphInfo {
            name: "cycle(64)".to_string(),
            n: 64,
        },
        query: Query::Cover {
            k: 2,
            starts: (0..samples.len() as u32).collect(),
        },
        budget: Budget {
            trials,
            seed,
            ..Budget::default()
        },
        coverage: Coverage::full(trials as u64),
        groups,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_reports_round_trip_exactly(
        seed in any::<u64>(),
        samples in prop::collection::vec(
            prop::collection::vec(0u64..SAMPLE_CAP, 1..40), 1..4),
        censored in 0u64..3,
    ) {
        let report = report_from_samples(seed, &samples, censored);
        let text = report.to_json();
        let back = Report::from_json(&text).expect("own serialization parses");
        prop_assert_eq!(&back, &report);
        // Canonical: re-rendering the parse is byte-stable.
        prop_assert_eq!(back.to_json(), text);
    }

    #[test]
    fn u128_scale_sums_survive_the_codec(count in 1usize..2000, seed in any::<u64>()) {
        // Constant near-2^40 samples: Σx² ≈ count · 2^80 comfortably
        // exceeds u64 — the codec must carry it as an exact u128 token.
        let xs = vec![SAMPLE_CAP - 1; count];
        let report = report_from_samples(seed, &[xs], 0);
        prop_assert!(report.groups[0].moments.sum_sq() > u128::from(u64::MAX));
        let back = Report::from_json(&report.to_json()).expect("parses");
        prop_assert_eq!(back, report);
    }

    #[test]
    fn truncated_reports_error_and_never_panic(
        cut in 0usize..1000,
        samples in prop::collection::vec(prop::collection::vec(0u64..100, 1..8), 1..3),
    ) {
        let text = report_from_samples(1, &samples, 0).to_json();
        // Valid UTF-8 prefix of the document (skip mid-char cuts).
        prop_assume!(cut < text.len() && text.is_char_boundary(cut));
        let truncated = &text[..cut];
        // Cutting only the trailing newline leaves a valid document;
        // every shorter prefix must be a clean parse error.
        if cut < text.len() - 1 {
            prop_assert!(Report::from_json(truncated).is_err());
        } else {
            let _ = Report::from_json(truncated);
        }
    }

    #[test]
    fn single_byte_mutations_never_panic(
        pos in 0usize..1000,
        replacement in 0u8..128,
        samples in prop::collection::vec(prop::collection::vec(0u64..100, 1..8), 1..3),
    ) {
        let text = report_from_samples(2, &samples, 1).to_json();
        prop_assume!(pos < text.len());
        let mut bytes = text.into_bytes();
        bytes[pos] = replacement;
        if let Ok(mutated) = String::from_utf8(bytes) {
            // Err or a clean parse are both acceptable; a panic is not.
            let _ = Report::from_json(&mutated);
        }
    }
}

#[test]
fn boundary_observations_round_trip() {
    // A single u64::MAX observation is inside the codec's exact domain
    // (count 1: n·Σx² = Σx² = (2^64−1)² < 2^128).
    for xs in [
        vec![u64::MAX],
        vec![0],
        vec![0, SAMPLE_CAP - 1],
        vec![SAMPLE_CAP - 1; 3],
    ] {
        let report = report_from_samples(7, std::slice::from_ref(&xs), 0);
        let back = Report::from_json(&report.to_json()).expect("parses");
        assert_eq!(back, report, "failed for sample {xs:?}");
        assert_eq!(back.groups[0].moments.max(), xs.iter().max().copied());
    }
}

/// Hand-curated malformed corpus: every entry must be `Err`, never a
/// panic, and the message should name the offending part.
#[test]
fn malformed_corpus_is_rejected_without_panicking() {
    let base = report_from_samples(3, &[vec![5, 10, 15]], 0).to_json();
    let mutate = |from: &str, to: &str| base.replace(from, to);
    let cases: Vec<(String, &str)> = vec![
        // Overlapping / unsorted / out-of-range coverage.
        (mutate("null", "[[0, 2], [1, 3]]"), "coverage overlap"),
        (mutate("null", "[[2, 1]]"), "inverted coverage"),
        (mutate("null", "[[0, 999]]"), "coverage past the budget"),
        (mutate("null", "[[0, 0]]"), "empty coverage range"),
        (mutate("null", "[]"), "empty coverage array"),
        // Moments violating Cauchy–Schwarz or min/max sanity.
        (mutate("\"sum_sq\": 350", "\"sum_sq\": 1"), "C-S violation"),
        (mutate("\"min\": 5", "\"min\": 99"), "min above max"),
        (
            mutate("\"count\": 3", "\"count\": 0"),
            "empty count with sums",
        ),
        // Sums big enough to overflow the consistency check.
        (
            mutate("\"sum_sq\": 350", &format!("\"sum_sq\": {}", u128::MAX)),
            "overflowing moments",
        ),
        // Non-finite floats (JSON has no NaN; infinities via overflow).
        (mutate("0.95", "NaN"), "NaN confidence"),
        (mutate("0.95", "1e999"), "infinite confidence"),
        // Structural damage.
        (
            mutate("\"schema\": \"mrw-report-v1\"", "\"schema\": \"v0\""),
            "wrong schema",
        ),
        (mutate("\"groups\"", "\"gruops\""), "missing groups"),
        (mutate("\"trials\": 3", "\"trials\": -3"), "negative trials"),
        (base.replace('[', "("), "broken arrays"),
    ];
    for (text, what) in cases {
        assert_ne!(text, base, "mutation for '{what}' did not apply");
        assert!(
            Report::from_json(&text).is_err(),
            "accepted a report with {what}"
        );
    }
    // Adaptive-budget rules are validated, not asserted, on the way in.
    let adaptive = r#"{"schema": "mrw-report-v1",
        "graph": {"name": "cycle(8)", "n": 8},
        "query": {"type": "hmax"},
        "budget": {"trials": {"adaptive": {"target": {"absolute": TARGET},
                                           "confidence": CONF,
                                           "min_trials": 8, "max_trials": MAX}},
                   "seed": 1},
        "coverage": null, "groups": []}"#;
    let fill = |target: &str, conf: &str, max: &str| {
        adaptive
            .replace("TARGET", target)
            .replace("CONF", conf)
            .replace("MAX", max)
    };
    assert!(Report::from_json(&fill("1.0", "0.95", "64")).is_ok());
    for (text, what) in [
        (fill("1e999", "0.95", "64"), "infinite precision target"),
        (fill("-1.0", "0.95", "64"), "negative precision target"),
        (fill("1.0", "1.5", "64"), "confidence above 1"),
        (fill("1.0", "0.95", "2"), "cap below the floor"),
    ] {
        assert!(
            Report::from_json(&text).is_err(),
            "accepted a report with {what}"
        );
    }
}
