//! Property tests for the adaptive (precision-targeted) trial budget:
//! the ISSUE-3 contract. Across a randomized cloud of (graph size, walk
//! count, seed, target) an adaptive cover estimate must
//!
//! (a) never consume more trials than the rule's hard cap,
//! (b) achieve the requested half-width whenever it stops below the cap,
//! (c) consume an identical trial count across 1/2/4-thread pools on a
//!     fixed seed — the wave schedule is part of the determinism
//!     contract, not a scheduling accident.

use mrw_core::{CoverTimeEstimator, EstimatorConfig, Precision};
use mrw_graph::generators;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn adaptive_run_honors_cap_and_target(
        n in 8usize..32,
        k in 1usize..5,
        seed in 0u64..1_000,
        rel in 0.1f64..0.4,
    ) {
        let g = generators::cycle(n);
        let rule = Precision::relative(rel).with_min_trials(8).with_max_trials(256);
        let est = CoverTimeEstimator::new(&g, k, EstimatorConfig::adaptive(rule).with_seed(seed))
            .run_from(0);
        let consumed = est.consumed_trials() as usize;
        // (a) floor ≤ consumed ≤ cap, always.
        prop_assert!(consumed >= rule.min_trials, "below floor: {consumed}");
        prop_assert!(consumed <= rule.max_trials, "cap exceeded: {consumed}");
        // (b) stopping below the cap certifies the target.
        if consumed < rule.max_trials {
            prop_assert!(
                est.ci().half_width() <= rel * est.mean().abs() + 1e-12,
                "stopped at {consumed} with half-width {} > {rel} × {}",
                est.ci().half_width(),
                est.mean()
            );
        }
    }

    #[test]
    fn adaptive_consumed_count_identical_across_pools(
        n in 8usize..24,
        seed in 0u64..1_000,
    ) {
        let g = generators::torus_2d(4 + n % 4);
        let rule = Precision::relative(0.2).with_min_trials(8).with_max_trials(128);
        let run = |threads: usize| {
            CoverTimeEstimator::new(
                &g,
                2,
                EstimatorConfig::adaptive(rule).with_seed(seed).with_threads(threads),
            )
            .run_from(0)
        };
        // (c) 1-, 2-, and 4-thread pools agree byte-for-byte: same
        // consumed count, same sample moments.
        let base = run(1);
        for threads in [2usize, 4] {
            let est = run(threads);
            prop_assert_eq!(est.consumed_trials(), base.consumed_trials(), "threads={}", threads);
            prop_assert_eq!(est.cover_time().mean(), base.cover_time().mean(), "threads={}", threads);
            prop_assert_eq!(est.cover_time().min(), base.cover_time().min(), "threads={}", threads);
            prop_assert_eq!(est.cover_time().max(), base.cover_time().max(), "threads={}", threads);
        }
    }

    #[test]
    fn hopeless_targets_stop_exactly_at_cap(
        n in 8usize..24,
        seed in 0u64..1_000,
    ) {
        let g = generators::cycle(n);
        let rule = Precision::absolute(1e-9).with_min_trials(4).with_max_trials(48);
        let est = CoverTimeEstimator::new(&g, 1, EstimatorConfig::adaptive(rule).with_seed(seed))
            .run_from(0);
        prop_assert_eq!(est.consumed_trials(), 48);
    }
}
