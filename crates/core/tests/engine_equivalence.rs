//! The engine refactor's contract, pinned: the unified `Engine` with a
//! `Simple` process reproduces the pre-refactor hand-rolled loops
//! **bit-for-bit** on seeded RNGs, and the two stepping disciplines agree
//! in distribution.
//!
//! The `legacy` module below is a frozen copy of the seed
//! implementation's inner loops (single cover, k-walk cover in both
//! modes, partial cover, multicover, fixed-horizon probe). If the engine
//! ever drifts — an extra RNG draw, a reordered token, a stopping rule
//! checked at the wrong boundary — these tests fail on the exact seed
//! that exposes it.

use mrw_core::{
    kwalk_cover_rounds, kwalk_covers_within, kwalk_multicover_rounds, kwalk_partial_cover_rounds,
    walk_rng, CoverTimeEstimator, EstimatorConfig, KWalkMode,
};
use mrw_graph::{generators, Graph};
use mrw_stats::ks_two_sample;

/// Frozen pre-refactor loops (verbatim from the seed, minus doc
/// comments) — including the one-step sampler itself, so a future change
/// to `mrw_core::walk::step` (e.g. the ROADMAP's batched/SIMD sampling)
/// breaks these tests instead of silently shifting both sides.
mod legacy {
    use mrw_graph::{Graph, NodeBitSet};
    use rand::Rng;

    pub fn step<R: Rng + ?Sized>(g: &Graph, pos: u32, rng: &mut R) -> u32 {
        let d = g.degree(pos);
        debug_assert!(d > 0, "walk stuck at isolated vertex {pos}");
        if d.is_power_of_two() {
            g.neighbor(pos, (rng.gen::<u32>() as usize) & (d - 1))
        } else {
            g.neighbor(pos, rng.gen_range(0..d))
        }
    }

    pub fn cover_time_single<R: Rng + ?Sized>(g: &Graph, start: u32, rng: &mut R) -> u64 {
        let mut visited = NodeBitSet::new(g.n());
        visited.insert(start);
        let mut remaining = g.n() - 1;
        let mut pos = start;
        let mut steps = 0u64;
        while remaining > 0 {
            pos = step(g, pos, rng);
            steps += 1;
            if visited.insert(pos) {
                remaining -= 1;
            }
        }
        steps
    }

    #[derive(Clone, Copy)]
    pub enum Mode {
        RoundSynchronous,
        Interleaved,
    }

    pub fn kwalk_cover_rounds<R: Rng + ?Sized>(
        g: &Graph,
        starts: &[u32],
        mode: Mode,
        rng: &mut R,
    ) -> u64 {
        let n = g.n();
        let mut visited = NodeBitSet::new(n);
        let mut remaining = n;
        for &s in starts {
            if visited.insert(s) {
                remaining -= 1;
            }
        }
        if remaining == 0 {
            return 0;
        }
        let mut pos: Vec<u32> = starts.to_vec();
        let k = pos.len();
        match mode {
            Mode::RoundSynchronous => {
                let mut rounds = 0u64;
                loop {
                    rounds += 1;
                    for p in pos.iter_mut() {
                        *p = step(g, *p, rng);
                        if visited.insert(*p) {
                            remaining -= 1;
                        }
                    }
                    if remaining == 0 {
                        return rounds;
                    }
                }
            }
            Mode::Interleaved => {
                let mut steps = 0u64;
                let mut token = 0usize;
                loop {
                    let p = &mut pos[token];
                    *p = step(g, *p, rng);
                    steps += 1;
                    if visited.insert(*p) {
                        remaining -= 1;
                        if remaining == 0 {
                            return steps.div_ceil(k as u64);
                        }
                    }
                    token += 1;
                    if token == k {
                        token = 0;
                    }
                }
            }
        }
    }

    pub fn kwalk_partial_cover_rounds<R: Rng + ?Sized>(
        g: &Graph,
        starts: &[u32],
        target: usize,
        rng: &mut R,
    ) -> u64 {
        let mut visited = NodeBitSet::new(g.n());
        let mut seen = 0usize;
        for &s in starts {
            if visited.insert(s) {
                seen += 1;
            }
        }
        if seen >= target {
            return 0;
        }
        let mut pos: Vec<u32> = starts.to_vec();
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            for p in pos.iter_mut() {
                *p = step(g, *p, rng);
                if visited.insert(*p) {
                    seen += 1;
                }
            }
            if seen >= target {
                return rounds;
            }
        }
    }

    pub fn kwalk_multicover_rounds<R: Rng + ?Sized>(
        g: &Graph,
        starts: &[u32],
        b: u64,
        rng: &mut R,
    ) -> u64 {
        let n = g.n();
        let mut counts = vec![0u64; n];
        let mut lacking = NodeBitSet::new(n);
        for v in 0..n as u32 {
            lacking.insert(v);
        }
        let mut remaining = n;
        let credit =
            |v: u32, counts: &mut Vec<u64>, lacking: &mut NodeBitSet, remaining: &mut usize| {
                counts[v as usize] += 1;
                if counts[v as usize] == b && lacking.remove(v) {
                    *remaining -= 1;
                }
            };
        for &s in starts {
            credit(s, &mut counts, &mut lacking, &mut remaining);
        }
        if remaining == 0 {
            return 0;
        }
        let mut pos: Vec<u32> = starts.to_vec();
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            for p in pos.iter_mut() {
                *p = step(g, *p, rng);
                credit(*p, &mut counts, &mut lacking, &mut remaining);
            }
            if remaining == 0 {
                return rounds;
            }
        }
    }

    pub fn kwalk_covers_within<R: Rng + ?Sized>(
        g: &Graph,
        starts: &[u32],
        rounds: u64,
        rng: &mut R,
    ) -> bool {
        let mut visited = NodeBitSet::new(g.n());
        let mut remaining = g.n();
        for &s in starts {
            if visited.insert(s) {
                remaining -= 1;
            }
        }
        if remaining == 0 {
            return true;
        }
        let mut pos: Vec<u32> = starts.to_vec();
        for _ in 0..rounds {
            for p in pos.iter_mut() {
                *p = step(g, *p, rng);
                if visited.insert(*p) {
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                return true;
            }
        }
        false
    }
}

/// The four families the acceptance criterion names.
fn families() -> Vec<Graph> {
    vec![
        generators::cycle(48),
        generators::torus_2d(6),
        generators::complete_with_loops(24),
        generators::barbell(13),
    ]
}

#[test]
fn round_synchronous_cover_is_bit_for_bit_legacy() {
    for g in families() {
        for k in [1usize, 2, 4, 8] {
            for seed in 0..24u64 {
                let starts = vec![0u32; k];
                let new = kwalk_cover_rounds(
                    &g,
                    &starts,
                    KWalkMode::RoundSynchronous,
                    &mut walk_rng(seed),
                );
                let old = legacy::kwalk_cover_rounds(
                    &g,
                    &starts,
                    legacy::Mode::RoundSynchronous,
                    &mut walk_rng(seed),
                );
                assert_eq!(new, old, "{} k={k} seed={seed}", g.name());
            }
        }
    }
}

#[test]
fn interleaved_cover_is_bit_for_bit_legacy() {
    for g in families() {
        for k in [1usize, 3, 8] {
            for seed in 0..24u64 {
                let starts = vec![0u32; k];
                let new =
                    kwalk_cover_rounds(&g, &starts, KWalkMode::Interleaved, &mut walk_rng(seed));
                let old = legacy::kwalk_cover_rounds(
                    &g,
                    &starts,
                    legacy::Mode::Interleaved,
                    &mut walk_rng(seed),
                );
                assert_eq!(new, old, "{} k={k} seed={seed}", g.name());
            }
        }
    }
}

#[test]
fn distinct_starts_also_bit_for_bit() {
    let g = generators::barbell(13);
    for seed in 0..32u64 {
        let starts = [1u32, 7, 6];
        let new = kwalk_cover_rounds(
            &g,
            &starts,
            KWalkMode::RoundSynchronous,
            &mut walk_rng(seed),
        );
        let old = legacy::kwalk_cover_rounds(
            &g,
            &starts,
            legacy::Mode::RoundSynchronous,
            &mut walk_rng(seed),
        );
        assert_eq!(new, old, "seed={seed}");
    }
}

#[test]
fn single_cover_is_bit_for_bit_legacy() {
    for g in families() {
        for seed in 0..32u64 {
            let new = mrw_core::cover_time_single(&g, 0, &mut walk_rng(seed));
            let old = legacy::cover_time_single(&g, 0, &mut walk_rng(seed));
            assert_eq!(new, old, "{} seed={seed}", g.name());
        }
    }
}

#[test]
fn partial_cover_is_bit_for_bit_legacy() {
    for g in families() {
        let targets = [1, g.n() / 2, g.n()];
        for &target in &targets {
            for seed in 0..16u64 {
                let starts = [0u32, 0];
                let new = kwalk_partial_cover_rounds(&g, &starts, target, &mut walk_rng(seed));
                let old =
                    legacy::kwalk_partial_cover_rounds(&g, &starts, target, &mut walk_rng(seed));
                assert_eq!(new, old, "{} target={target} seed={seed}", g.name());
            }
        }
    }
}

#[test]
fn multicover_is_bit_for_bit_legacy() {
    for g in families() {
        for b in [1u64, 2, 3] {
            for seed in 0..12u64 {
                let starts = [0u32, 0];
                let new = kwalk_multicover_rounds(&g, &starts, b, &mut walk_rng(seed));
                let old = legacy::kwalk_multicover_rounds(&g, &starts, b, &mut walk_rng(seed));
                assert_eq!(new, old, "{} b={b} seed={seed}", g.name());
            }
        }
    }
}

#[test]
fn fixed_horizon_probe_is_bit_for_bit_legacy() {
    let g = generators::torus_2d(6);
    for rounds in [0u64, 1, 10, 200] {
        for seed in 0..16u64 {
            let starts = [0u32, 0, 0];
            let new = kwalk_covers_within(&g, &starts, rounds, &mut walk_rng(seed));
            let old = legacy::kwalk_covers_within(&g, &starts, rounds, &mut walk_rng(seed));
            assert_eq!(new, old, "rounds={rounds} seed={seed}");
        }
    }
}

#[test]
fn engine_scalar_path_is_bit_for_bit_legacy() {
    // `BatchMode::Never` forces `drive_scalar_sync`, the frozen legacy
    // loop. The batched dispatch has been rebuilt around it twice
    // (degree-class buckets, then the flat pick-table sweep); this pins
    // that neither rebuild leaked into the scalar path — including on the
    // irregular families whose *batched* routing changed.
    use mrw_core::engine::{BatchMode, Engine, FullCover, SimpleStep};
    let graphs = vec![
        generators::cycle(48),
        generators::torus_2d(6),
        generators::barbell(13),
        generators::star(20),
        generators::lollipop(17),
    ];
    for g in &graphs {
        for k in [1usize, 4, 8] {
            for seed in 0..12u64 {
                let starts = vec![0u32; k];
                let engine = Engine::new(g, SimpleStep, FullCover::new(g.n()))
                    .batch(BatchMode::Never)
                    .run(&starts, &mut walk_rng(seed))
                    .rounds;
                let old = legacy::kwalk_cover_rounds(
                    g,
                    &starts,
                    legacy::Mode::RoundSynchronous,
                    &mut walk_rng(seed),
                );
                assert_eq!(engine, old, "{} k={k} seed={seed}", g.name());
            }
        }
    }
}

#[test]
fn disciplines_agree_in_distribution_ks() {
    // The two disciplines define the same process; their cover-time
    // samples must pass a two-sample KS test at any sane level.
    let g = generators::torus_2d(6);
    let trials = 400u64;
    let sync: Vec<f64> = (0..trials)
        .map(|t| {
            kwalk_cover_rounds(
                &g,
                &[0, 0, 0, 0],
                KWalkMode::RoundSynchronous,
                &mut walk_rng(t),
            ) as f64
        })
        .collect();
    let inter: Vec<f64> = (0..trials)
        .map(|t| {
            kwalk_cover_rounds(
                &g,
                &[0, 0, 0, 0],
                KWalkMode::Interleaved,
                &mut walk_rng(100_000 + t),
            ) as f64
        })
        .collect();
    let ks = ks_two_sample(&sync, &inter);
    assert!(
        !ks.rejects_at(0.01),
        "disciplines diverged: D = {}, p = {}",
        ks.statistic,
        ks.p_value
    );
}

#[test]
fn estimator_parallel_fanout_matches_serial_exactly() {
    // The flattened (start × trial) fan-out must not change any estimate:
    // worst-start search on 1 thread == 8 threads, sample for sample.
    let g = generators::cycle(32);
    let run = |threads: usize| {
        CoverTimeEstimator::new(
            &g,
            2,
            EstimatorConfig::new(16).with_seed(3).with_threads(threads),
        )
        .run_worst_start()
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.start(), parallel.start());
    assert_eq!(serial.cover_time().mean(), parallel.cover_time().mean());
    assert_eq!(serial.cover_time().min(), parallel.cover_time().min());
    assert_eq!(serial.cover_time().max(), parallel.cover_time().max());
}
