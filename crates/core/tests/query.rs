//! Property tests for the query layer and shard protocol: the ISSUE-4
//! contract.
//!
//! * [`Report::merge`] is associative and commutative — the group
//!   statistics are exact integers, so any merge tree over any partition
//!   yields the same value.
//! * Any shard partition of a fixed budget reproduces the single-process
//!   report **exactly** (structural equality *and* byte-identical JSON),
//!   across thread counts.
//! * Sharded adaptive budgets certify their achieved half-width after the
//!   merge.
//! * The typed `Session` convenience entry points are bit-for-bit
//!   equivalent to the `Session::run` reports they view.

use mrw_core::query::{Budget, Query, Report, Session, Shard};
use mrw_core::{CoverTimeEstimator, EstimatorConfig, Precision, PreyStrategy};
use mrw_graph::generators;
use proptest::prelude::*;

/// A fixed-budget cover query with everything randomized that the
/// determinism contract quantifies over.
fn cover_setup(n: usize, k: usize, trials: usize, seed: u64) -> (mrw_graph::Graph, Query, Budget) {
    let g = generators::cycle(n);
    let q = Query::Cover {
        k,
        starts: vec![0, (n / 2) as u32],
    };
    let budget = Budget {
        trials,
        seed,
        ..Budget::default()
    };
    (g, q, budget)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any contiguous 2- or 3-way partition of the trial range merges to
    /// exactly the single-process report — structurally and as JSON —
    /// and the merge is commutative.
    #[test]
    fn any_shard_partition_reproduces_the_whole_run(
        n in 8usize..28,
        k in 1usize..4,
        trials in 4usize..40,
        seed in 0u64..500,
        ways in 2usize..4,
    ) {
        let (g, q, budget) = cover_setup(n, k, trials, seed);
        let whole = Session::new(budget.clone()).run(&g, &q);
        let shards: Vec<Report> = (0..ways)
            .map(|i| {
                Session::new(budget.clone())
                    .with_shard(Shard::new(i, ways))
                    .run(&g, &q)
            })
            .collect();
        // Left fold.
        let mut forward = shards[0].clone();
        for s in &shards[1..] {
            forward = Report::merge(&forward, s).unwrap();
        }
        prop_assert_eq!(&forward, &whole);
        prop_assert_eq!(forward.to_json(), whole.to_json());
        // Reverse fold: commutativity + associativity over the partition.
        let mut backward = shards[ways - 1].clone();
        for s in shards[..ways - 1].iter().rev() {
            backward = Report::merge(s, &backward).unwrap();
        }
        prop_assert_eq!(&backward, &whole);
    }

    /// The work-stealing dispatcher's headline guarantee, pinned at the
    /// protocol layer: determinism comes from `Report::merge`'s coverage
    /// accounting, never from chunk *assignment*. Any randomized cut of
    /// the trial space into chunks, merged in any randomized order
    /// (as if chunks were stolen and completed in arbitrary interleaving,
    /// including after retries), reproduces the whole run byte for byte.
    #[test]
    fn any_randomized_chunk_schedule_reproduces_the_whole_run(
        n in 8usize..28,
        k in 1usize..4,
        trials in 8usize..48,
        seed in 0u64..500,
        raw_cuts in prop::collection::vec(0usize..1_000, 0..6),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let (g, q, budget) = cover_setup(n, k, trials, seed);
        let whole = Session::new(budget.clone()).run(&g, &q);
        // Random cut points -> a sorted, deduped chunk partition.
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|c| 1 + c % trials.max(2)).collect();
        cuts.push(0);
        cuts.push(trials);
        cuts.sort_unstable();
        cuts.dedup();
        let mut chunks: Vec<Report> = cuts
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(|w| {
                Session::new(budget.clone())
                    .with_range(w[0]..w[1])
                    .run(&g, &q)
            })
            .collect();
        // A seeded Fisher–Yates shuffle stands in for the arbitrary
        // completion order of a stealing pool.
        let mut state = shuffle_seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..chunks.len()).rev() {
            chunks.swap(i, (next() % (i as u64 + 1)) as usize);
        }
        let mut merged = chunks[0].clone();
        for c in &chunks[1..] {
            merged = Report::merge(&merged, c).unwrap();
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.to_json(), whole.to_json());
    }

    /// Merging is independent of the merge *tree*: (a ⊕ b) ⊕ c equals
    /// a ⊕ (b ⊕ c) exactly, for shards produced under different thread
    /// counts (thread count must not leak into the statistics).
    #[test]
    fn merge_is_associative_across_thread_counts(
        n in 8usize..24,
        trials in 6usize..30,
        seed in 0u64..500,
    ) {
        let (g, q, budget) = cover_setup(n, 2, trials, seed);
        let shard = |i: usize, threads: usize| {
            Session::new(Budget { threads, ..budget.clone() })
                .with_shard(Shard::new(i, 3))
                .run(&g, &q)
        };
        let (a, b, c) = (shard(0, 1), shard(1, 2), shard(2, 4));
        let left = Report::merge(&Report::merge(&a, &b).unwrap(), &c).unwrap();
        let right = Report::merge(&a, &Report::merge(&b, &c).unwrap()).unwrap();
        prop_assert_eq!(&left, &right);
        let whole = Session::new(budget).run(&g, &q);
        prop_assert_eq!(&left, &whole);
    }

    /// A sharded adaptive budget runs its fixed slice of the cap; the
    /// merged report re-evaluates the rule and certifies the achieved
    /// half-width whenever the merged sample is tight enough — and the
    /// certification verdict matches a by-hand check of the rule.
    #[test]
    fn sharded_adaptive_certifies_after_merge(
        n in 8usize..20,
        seed in 0u64..300,
        rel in 0.05f64..0.5,
    ) {
        let g = generators::cycle(n);
        let rule = Precision::relative(rel).with_min_trials(8).with_max_trials(64);
        let q = Query::Cover { k: 2, starts: vec![0] };
        let budget = Budget { precision: Some(rule), seed, ..Budget::default() };
        let a = Session::new(budget.clone()).with_shard(Shard::new(0, 2)).run(&g, &q);
        let b = Session::new(budget).with_shard(Shard::new(1, 2)).run(&g, &q);
        // Each shard ran exactly its slice of the cap.
        prop_assert_eq!(a.consumed_trials() + b.consumed_trials(), 64);
        let merged = Report::merge(&a, &b).unwrap();
        let certified = merged.certified().expect("adaptive budgets certify");
        prop_assert_eq!(
            certified,
            rule.satisfied_by(&merged.groups[0].summary()),
            "certification disagrees with the rule"
        );
    }

    /// The JSON codec is lossless on arbitrary fixed-budget reports: a
    /// parsed report is structurally equal and re-renders byte-identically.
    #[test]
    fn report_json_round_trips(
        n in 8usize..24,
        trials in 2usize..20,
        seed in 0u64..500,
    ) {
        let g = generators::torus_2d(3 + n % 4);
        let q = Query::Pursuit {
            ks: vec![1, 3],
            hunters: 0,
            prey: (g.n() / 2) as u32,
            strategy: PreyStrategy::RandomWalk,
            cap: 50_000,
        };
        let report = Session::new(Budget { trials, seed, ..Budget::default() })
            .with_shard(Shard::new(0, 2))
            .run(&g, &q);
        let text = report.to_json();
        let back = Report::from_json(&text).unwrap();
        prop_assert_eq!(&back, &report);
        prop_assert_eq!(back.to_json(), text);
    }

    /// The cache-extension soundness lemma, independent of the daemon: a
    /// complete `0..n` run restated into an `m`-trial space and merged
    /// with a fresh `n..m` slice is JSON-byte-identical to the direct
    /// `0..m` run — trials are pure functions of `(seed, group, index)`,
    /// never of the budget's total, so a cached report extends by
    /// running only the missing range.
    #[test]
    fn range_extension_merges_to_the_direct_run(
        n in 6usize..24,
        k in 1usize..4,
        small in 3usize..30,
        extra in 1usize..30,
        seed in 0u64..500,
    ) {
        let (g, q, budget) = cover_setup(n, k, small, seed);
        let m = small + extra;
        let cached = Session::new(budget.clone()).run(&g, &q);
        assert!(cached.is_complete());
        let big_budget = Budget { trials: m, ..budget };
        let direct = Session::new(big_budget.clone()).run(&g, &q);
        // Restate the cached 0..small run in the m-trial space, run only
        // the missing small..m slice, and merge.
        let restated = cached.restate_trials(m).unwrap();
        prop_assert!(!restated.is_complete());
        let tail = Session::new(big_budget).with_range(small..m).run(&g, &q);
        let extended = Report::merge(&restated, &tail).unwrap();
        prop_assert_eq!(&extended, &direct);
        prop_assert_eq!(extended.to_json(), direct.to_json());
        // Shrinking the space back is the inverse where coverage allows.
        let back = restated.restate_trials(small).unwrap();
        prop_assert_eq!(back.to_json(), cached.to_json());
        prop_assert!(restated.restate_trials(small - 1).is_err());
    }
}

/// `restate_trials` guards its preconditions: adaptive budgets have no
/// free trial-space parameter, and coverage must fit in the new space.
#[test]
fn restate_trials_rejects_adaptive_budgets() {
    let g = generators::cycle(12);
    let q = Query::Cover {
        k: 2,
        starts: vec![0],
    };
    let rule = Precision::relative(0.5)
        .with_min_trials(4)
        .with_max_trials(16);
    let budget = Budget {
        precision: Some(rule),
        ..Budget::default()
    };
    let report = Session::new(budget).run(&g, &q);
    assert!(report.restate_trials(64).is_err());
}

/// The deprecated estimator facade and a raw `Session` run are the same
/// computation — the view must expose identical statistics.
#[test]
fn estimator_facade_equals_session_run() {
    let g = generators::cycle(40);
    let cfg = EstimatorConfig::new(24).with_seed(13);
    let facade = CoverTimeEstimator::new(&g, 3, cfg).run_from(5);
    let report = Session::new(Budget {
        trials: 24,
        seed: 13,
        ..Budget::default()
    })
    .run(
        &g,
        &Query::Cover {
            k: 3,
            starts: vec![5],
        },
    );
    assert_eq!(facade.cover_time(), report.groups[0].summary());
    assert_eq!(facade.consumed_trials(), report.groups[0].trials);
    assert_eq!(facade.mean(), report.mean());
    assert_eq!(facade.half_width(), report.half_width());
}

/// `speedup_sweep` is a view over `Query::SpeedupLadder`: identical
/// baseline and per-k estimates.
#[test]
fn speedup_sweep_equals_ladder_report() {
    use mrw_core::speedup::{speedup_sweep, SpeedupSweep};
    let g = generators::cycle(32);
    let cfg = EstimatorConfig::new(16).with_seed(7);
    let sweep = speedup_sweep(&g, 0, &[2, 4], &cfg);
    let report = Session::new(Budget {
        trials: 16,
        seed: 7,
        ..Budget::default()
    })
    .run(
        &g,
        &Query::SpeedupLadder {
            start: 0,
            ks: vec![2, 4],
        },
    );
    let view = SpeedupSweep::from_report(&report);
    assert_eq!(sweep.baseline.mean(), view.baseline.mean());
    assert_eq!(sweep.speedup_at(4), view.speedup_at(4));
    assert_eq!(report.groups.len(), 3);
    assert_eq!(report.groups[0].label, "baseline");
    assert_eq!(report.groups[2].label, "k=4");
}

/// `Session::pursuit` is a typed view over `Session::run` with
/// `Query::Pursuit` — same stream, same statistics, same censored tally.
#[test]
fn pursuit_convenience_equals_session_run() {
    let g = generators::torus_2d(6);
    let prey = (g.n() - 1) as u32;
    let budget = Budget {
        trials: 40,
        seed: 21,
        ..Budget::default()
    };
    let direct = Session::new(budget.clone()).pursuit(&g, 0, prey, 2, PreyStrategy::Hide, 100_000);
    let report = Session::new(budget).run(
        &g,
        &Query::Pursuit {
            ks: vec![2],
            hunters: 0,
            prey,
            strategy: PreyStrategy::Hide,
            cap: 100_000,
        },
    );
    let view = mrw_core::CatchEstimate::from_report(&report, 0);
    assert_eq!(view.rounds(), direct.rounds());
    assert_eq!(view.censored(), direct.censored());
    assert_eq!(view.consumed_trials(), direct.consumed_trials());
}

/// `Session::partial_profile` is a typed view over `Session::run` with
/// `Query::PartialCover` — same per-γ means and consumed counts.
#[test]
fn partial_profile_convenience_equals_session_run() {
    let g = generators::torus_2d(5);
    let gammas = [0.25, 0.75, 1.0];
    let budget = Budget {
        trials: 32,
        seed: 9,
        ..Budget::default()
    };
    let direct = Session::new(budget.clone()).partial_profile(&g, 0, 2, &gammas);
    let report = Session::new(budget).run(
        &g,
        &Query::PartialCover {
            start: 0,
            k: 2,
            gammas: gammas.to_vec(),
        },
    );
    assert_eq!(report.groups.len(), direct.len());
    for (a, b) in direct.iter().zip(&report.groups) {
        assert_eq!(a.mean_rounds, b.mean());
        assert_eq!(a.trials as u64, b.trials);
    }
}

/// Hitting reports keep the discard semantics through a shard merge: the
/// censored tallies add, the counted moments stay exact.
#[test]
fn hitting_shards_merge_discards_exactly() {
    let g = generators::cycle(48);
    // A cap low enough that some walks are censored.
    let q = Query::Hitting {
        from: 0,
        to: 24,
        cap: 400,
    };
    let budget = Budget {
        trials: 60,
        seed: 2,
        ..Budget::default()
    };
    let whole = Session::new(budget.clone()).run(&g, &q);
    let parts: Vec<Report> = (0..3)
        .map(|i| {
            Session::new(budget.clone())
                .with_shard(Shard::new(i, 3))
                .run(&g, &q)
        })
        .collect();
    let merged = Report::merge(&Report::merge(&parts[0], &parts[1]).unwrap(), &parts[2]).unwrap();
    assert_eq!(merged, whole);
    let group = &whole.groups[0];
    assert!(group.censored > 0, "cap chosen to censor some walks");
    assert_eq!(group.moments.count() + group.censored, group.trials);
}
