//! Counting-allocator proof of the zero-alloc trial contract: after one
//! warmup run, an estimator-style trial loop — `Engine::run_with` over a
//! reused [`EngineArena`] with a reset [`FullCover`] — performs **zero**
//! heap allocations in the stepping loop, on both the scalar and the
//! batched path. Also the compile-once regression: a `CompiledProcess` is
//! built once per run, never per step, so the allocation bill of a run is
//! independent of its length.
//!
//! Everything lives in one `#[test]` because the counter is process-global
//! and the libtest harness runs tests concurrently; a single test keeps
//! the measured windows free of foreign allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mrw_core::engine::{BatchMode, CompiledProcess, Engine, EngineArena, FullCover, SimpleStep};
use mrw_core::{walk_rng, WalkProcess};
use mrw_graph::generators;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// The library crates forbid unsafe code; this test crate hosts the one
// unavoidable unsafe impl (a `GlobalAlloc` shim over `System`).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One estimator-style trial: reset the cover observer, rebuild the start
/// vector in place, run through the reused arena.
fn trial(
    g: &mrw_graph::Graph,
    k: usize,
    batch: BatchMode,
    seed: u64,
    arena: &mut EngineArena,
    cover: &mut FullCover,
    starts: &mut Vec<u32>,
) -> u64 {
    starts.clear();
    starts.resize(k, 0);
    cover.reset(g.n());
    Engine::new(g, SimpleStep, cover)
        .batch(batch)
        .run_with(starts, &mut walk_rng(seed), arena)
        .rounds
}

#[test]
fn stepping_loop_is_zero_alloc_after_warmup() {
    let g = generators::torus_2d(8);

    // --- estimator trial loop: scalar (k = 2) and batched (k = 128) ---
    for (k, batch) in [(2usize, BatchMode::Never), (128, BatchMode::Auto)] {
        let mut arena = EngineArena::new();
        let mut cover = FullCover::new(g.n());
        let mut starts = Vec::new();
        let warmup = trial(&g, k, batch, 0, &mut arena, &mut cover, &mut starts);
        assert!(warmup > 0, "warmup trial must actually cover");

        // Up to three measurement windows: one-time lazy initializations
        // elsewhere in the process (stdout buffers, TLS) may land in the
        // first window; a real per-trial leak allocates in every window.
        let mut leaked = u64::MAX;
        for attempt in 0..3u64 {
            let before = allocations();
            let mut total = 0u64;
            for seed in 1..=20u64 {
                let s = 100 * attempt + seed;
                total += trial(&g, k, batch, s, &mut arena, &mut cover, &mut starts);
            }
            assert!(total > 0);
            leaked = allocations() - before;
            if leaked == 0 {
                break;
            }
        }
        assert_eq!(
            leaked, 0,
            "k = {k} ({batch:?}): {leaked} allocations leaked into the trial loop \
             in every measurement window"
        );
    }

    // --- compile-once regression: the allocation bill of a run with a
    // compiled process (Metropolis owns two O(n) tables; Lazy a cached
    // Bernoulli) must not depend on how many steps the run takes. ---
    for process in [WalkProcess::Metropolis, WalkProcess::Lazy(0.5)] {
        for batch in [BatchMode::Never, BatchMode::Always] {
            let mut arena = EngineArena::new();
            // Warm the arena at this k so only per-run costs remain.
            let _ = Engine::new(&g, CompiledProcess::new(process, &g), ())
                .batch(batch)
                .cap(4)
                .run_with(&[0; 8], &mut walk_rng(0), &mut arena);

            let cost_of = |cap: u64, arena: &mut EngineArena| {
                let before = allocations();
                let _ = Engine::new(&g, CompiledProcess::new(process, &g), ())
                    .batch(batch)
                    .cap(cap)
                    .run_with(&[0; 8], &mut walk_rng(7), arena);
                allocations() - before
            };
            // Same one-time-noise tolerance as above: compare windows
            // until two agree, so an unrelated lazy init cannot fail the
            // regression; a per-step compile would inflate `long` in
            // every window.
            let mut agreed = false;
            for _ in 0..3 {
                let short = cost_of(16, &mut arena);
                let long = cost_of(4096, &mut arena);
                if short == long {
                    agreed = true;
                    break;
                }
            }
            assert!(
                agreed,
                "{process:?} ({batch:?}): a 256x longer run allocated more in every \
                 window — the process is being recompiled mid-run"
            );
        }
    }
}
