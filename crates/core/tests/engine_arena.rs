//! Property tests for [`EngineArena`] reset semantics: a run on a reused
//! (dirty) arena must be byte-identical to a run on a fresh engine — same
//! rounds, same stopping verdict, same final positions, same observer
//! statistics — across every observer, both disciplines, and all three
//! batch modes. The arena is scratch memory, never a carrier of state
//! between runs.

use mrw_core::engine::{
    BatchMode, CompiledProcess, CoverageCurve, Discipline, Engine, EngineArena, FullCover, Hit,
    Meeting, Multicover, Observer, PartialCover, PreyMove, Process, Pursuit, SimpleStep, Trace,
    VisitTally,
};
use mrw_core::{walk_rng, WalkProcess};
use mrw_graph::{generators, Graph};
use proptest::prelude::*;

/// A canonical, comparable record of everything a run produced.
#[derive(Debug, PartialEq)]
struct Digest {
    rounds: u64,
    stopped: bool,
    positions: Vec<u32>,
    stats: Vec<u64>,
}

const CAP: u64 = 2_000;

fn family(fam: usize, size: usize) -> Graph {
    match fam % 5 {
        0 => generators::cycle(8 + size % 24),
        1 => generators::torus_2d(3 + size % 4),
        2 => generators::complete_with_loops(6 + size % 12),
        3 => generators::hypercube(3 + (size % 3) as u32),
        _ => generators::barbell(9 + 2 * (size % 4)),
    }
}

/// Runs one configuration either on a fresh engine (`arena: None`) or on
/// the given (deliberately dirty) arena, and digests the outcome.
#[allow(clippy::too_many_arguments)]
fn run_case<P: Process, O: Observer>(
    g: &Graph,
    process: P,
    starts: &[u32],
    seed: u64,
    discipline: Discipline,
    batch: BatchMode,
    observer: O,
    digest: impl FnOnce(O) -> Vec<u64>,
    arena: Option<&mut EngineArena>,
) -> Digest {
    let engine = Engine::new(g, process, observer)
        .discipline(discipline)
        .batch(batch)
        .cap(CAP);
    match arena {
        None => {
            let out = engine.run(starts, &mut walk_rng(seed));
            Digest {
                rounds: out.rounds,
                stopped: out.stopped,
                positions: out.positions,
                stats: digest(out.observer),
            }
        }
        Some(a) => {
            let out = engine.run_with(starts, &mut walk_rng(seed), a);
            Digest {
                rounds: out.rounds,
                stopped: out.stopped,
                positions: a.positions().to_vec(),
                stats: digest(out.observer),
            }
        }
    }
}

/// An arena left dirty by an unrelated run (different seed, token count,
/// and trajectory length than the case under test).
fn dirty_arena(g: &Graph, k: usize, dirty_seed: u64) -> EngineArena {
    let mut arena = EngineArena::new();
    let dirty_starts = vec![0u32; k + 3];
    let _ = Engine::new(g, SimpleStep, FullCover::new(g.n()))
        .batch(BatchMode::Always)
        .cap(17)
        .run_with(&dirty_starts, &mut walk_rng(dirty_seed), &mut arena);
    arena
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reused_arena_is_byte_identical_across_observers(
        fam in 0usize..5,
        size in 0usize..24,
        k in 1usize..10,
        seed in any::<u64>(),
        disc in 0usize..2,
        batch in 0usize..3,
        dirty_seed in any::<u64>(),
    ) {
        let g = family(fam, size);
        let n = g.n();
        let start = (seed % n as u64) as u32;
        let probe = ((seed >> 7) % n as u64) as u32;
        let starts = vec![start; k];
        let discipline = [Discipline::RoundSynchronous, Discipline::Interleaved][disc];
        let batch = [BatchMode::Auto, BatchMode::Never, BatchMode::Always][batch];

        macro_rules! case {
            ($mk:expr, $dg:expr) => {{
                let fresh = run_case(
                    &g, SimpleStep, &starts, seed, discipline, batch, $mk, $dg, None,
                );
                let mut arena = dirty_arena(&g, k, dirty_seed);
                let reused = run_case(
                    &g, SimpleStep, &starts, seed, discipline, batch, $mk, $dg,
                    Some(&mut arena),
                );
                prop_assert_eq!(&fresh, &reused, "observer diverged on {}", g.name());
            }};
        }

        case!((), |_| Vec::new());
        case!(FullCover::new(n), |o: FullCover| {
            let mut s = vec![o.remaining() as u64];
            s.extend(o.visited().iter().map(u64::from));
            s
        });
        case!(PartialCover::new(n, n.div_ceil(2)), |o: PartialCover| vec![
            o.seen() as u64
        ]);
        case!(Multicover::new(n, 2), |o: Multicover| o.counts().to_vec());
        case!(Hit::new(probe), |o: Hit| vec![o.done() as u64]);
        case!(Meeting::new(), |o: Meeting| vec![o.done() as u64]);
        case!(Pursuit::new(probe, PreyMove::Hide), |o: Pursuit| vec![
            o.prey_position() as u64,
            o.done() as u64
        ]);
        case!(Pursuit::new(probe, PreyMove::RandomWalk), |o: Pursuit| vec![
            o.prey_position() as u64,
            o.done() as u64
        ]);
        case!(VisitTally::new(n), |o: VisitTally| o.into_counts());
        case!(CoverageCurve::new(n, CAP as usize), |o: CoverageCurve| o
            .into_curve()
            .into_iter()
            .map(f64::to_bits)
            .collect());
        case!(Trace::new(CAP as usize), |o: Trace| o
            .into_positions()
            .into_iter()
            .map(u64::from)
            .collect());
    }

    #[test]
    fn reused_arena_is_byte_identical_for_compiled_kernels(
        fam in 0usize..5,
        size in 0usize..24,
        k in 1usize..10,
        seed in any::<u64>(),
        batch in 0usize..3,
        hold in 0usize..3,
        dirty_seed in any::<u64>(),
    ) {
        let g = family(fam, size);
        let n = g.n();
        let starts = vec![(seed % n as u64) as u32; k];
        let batch = [BatchMode::Auto, BatchMode::Never, BatchMode::Always][batch];
        let process = [
            WalkProcess::Simple,
            WalkProcess::Lazy([0.25, 0.5, 0.75][hold]),
            WalkProcess::Metropolis,
        ][hold % 3];

        let digest = |o: FullCover| vec![o.remaining() as u64];
        let fresh = run_case(
            &g,
            CompiledProcess::new(process, &g),
            &starts,
            seed,
            Discipline::RoundSynchronous,
            batch,
            FullCover::new(n),
            digest,
            None,
        );
        let mut arena = dirty_arena(&g, k, dirty_seed);
        let reused = run_case(
            &g,
            CompiledProcess::new(process, &g),
            &starts,
            seed,
            Discipline::RoundSynchronous,
            batch,
            FullCover::new(n),
            digest,
            Some(&mut arena),
        );
        prop_assert_eq!(&fresh, &reused, "{:?} diverged on {}", process, g.name());
    }

    #[test]
    fn one_arena_serves_many_runs_in_sequence(
        fam in 0usize..5,
        size in 0usize..24,
        seeds in prop::collection::vec(0u64..1_000_000, 2..6),
    ) {
        // The same arena threads through a whole sequence of runs with
        // varying k; each run must still match its fresh twin.
        let g = family(fam, size);
        let mut arena = EngineArena::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let k = 1 + (i * 7 + fam) % 9;
            let starts = vec![0u32; k];
            let fresh = Engine::new(&g, SimpleStep, FullCover::new(g.n()))
                .batch(BatchMode::Always)
                .cap(CAP)
                .run(&starts, &mut walk_rng(seed));
            let reused = Engine::new(&g, SimpleStep, FullCover::new(g.n()))
                .batch(BatchMode::Always)
                .cap(CAP)
                .run_with(&starts, &mut walk_rng(seed), &mut arena);
            prop_assert_eq!(fresh.rounds, reused.rounds);
            prop_assert_eq!(fresh.stopped, reused.stopped);
            prop_assert_eq!(&fresh.positions[..], arena.positions());
        }
    }
}
