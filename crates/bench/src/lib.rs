//! Criterion benchmark harness crate (benches live in `benches/`).
