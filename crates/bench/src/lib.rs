//! # mrw-bench — the Criterion benchmark harness
//!
//! This crate exists only for its `benches/` directory; the library
//! target is intentionally empty. Every benchmark runs against the
//! vendored offline `criterion` stand-in (`vendor/criterion`), which
//! exposes the `criterion_group!`/`criterion_main!` surface the real
//! crate has, so swapping in upstream Criterion requires no source
//! changes.
//!
//! ## Targets
//!
//! | Bench | What it times |
//! |-------|---------------|
//! | `engine` | raw engine throughput (ns/step) per graph shape, thread-pool scaling, and the batched-vs-scalar stepping comparison; `--test` mode emits `BENCH_engine.json`, archived by CI |
//! | `adaptive` | adaptive (precision-targeted) vs fixed trial budgets, and the wave-dispatch overhead of `par_map_chunks_with` at a matched trial count |
//! | `ablations` | the DESIGN.md §4 design choices: stepping disciplines, process compilation, observer overhead |
//! | `processes` | simple vs lazy vs Metropolis walks, partial coverage, visit tallies |
//! | `cycle` / `torus` / `clique` / `barbell` / `expander` | one bench per Table 1 family's speed-up experiment |
//! | `table1` | the full one-row measurement pipeline per family |
//! | `bounds` | the closed-form bound computations (Theorems 1/9/13) |
//! | `spectral` | dense-LU vs Gauss–Seidel hitting times, CG resistance, Jacobi spectrum |
//! | `appendix` | Lemma 16 / Lemma 19 / Proposition 23 drivers at quick scale |
//!
//! ## Running
//!
//! ```text
//! cargo bench                   # everything, paper-adjacent sizes
//! cargo bench --bench engine    # one target
//! cargo bench --bench engine -- --test   # smoke mode; writes BENCH_engine.json
//! ```
//!
//! Estimator-driven benches use **fixed** trial budgets
//! ([`Trials::Fixed`](mrw_stats::Trials)) on purpose: an adaptive budget
//! would let the measured work vary with the sample noise, which is
//! exactly what a benchmark must not do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
