//! Bench: Theorem 8 — the 2-d torus speed-up spectrum.
//!
//! Probes the low regime (`k ≤ log n`), the gap, and the saturated regime
//! (`k ≥ log³ n`). `mrw torus` prints the S^k/k series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrw_core::{CoverTimeEstimator, EstimatorConfig};
use mrw_graph::generators;

fn bench_torus(c: &mut Criterion) {
    let g = generators::torus_2d(16); // n = 256
    let mut group = c.benchmark_group("thm8_torus_spectrum");
    group.sample_size(10);
    for k in [2usize, 32, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = EstimatorConfig::new(12).with_seed(5);
            b.iter(|| CoverTimeEstimator::new(&g, k, cfg.clone()).run_from(0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_torus);
criterion_main!(benches);
