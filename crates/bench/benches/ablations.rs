//! Ablation benches for the design choices called out in DESIGN.md §4:
//!
//! 1. round-synchronous vs interleaved k-walk stepping,
//! 2. bitset vs byte-array visited sets,
//! 3. masked vs `gen_range` neighbor sampling on power-of-two degrees,
//! 4. dynamic self-scheduling vs static chunking of the trial fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrw_core::kwalk::{kwalk_cover_rounds_same_start, KWalkMode};
use mrw_core::{walk_rng, CoverTimeEstimator, EstimatorConfig};
use mrw_graph::{generators, Graph, NodeBitSet};
use rand::Rng;

fn bench_stepping_mode(c: &mut Criterion) {
    let g = generators::torus_2d(16);
    let mut group = c.benchmark_group("ablation_stepping");
    group.sample_size(10);
    for (label, mode) in [
        ("round_synchronous", KWalkMode::RoundSynchronous),
        ("interleaved", KWalkMode::Interleaved),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let mut rng = walk_rng(11);
                kwalk_cover_rounds_same_start(&g, 0, 8, mode, &mut rng)
            })
        });
    }
    group.finish();
}

/// The production cover loop, but with `Vec<u8>` instead of the bitset —
/// the alternative DESIGN.md §4.2 rejects.
fn cover_bytearray(g: &Graph, start: u32, rng: &mut impl Rng) -> u64 {
    let mut visited = vec![0u8; g.n()];
    visited[start as usize] = 1;
    let mut remaining = g.n() - 1;
    let mut pos = start;
    let mut steps = 0u64;
    while remaining > 0 {
        pos = mrw_core::walk::step(g, pos, rng);
        steps += 1;
        if visited[pos as usize] == 0 {
            visited[pos as usize] = 1;
            remaining -= 1;
        }
    }
    steps
}

fn cover_bitset(g: &Graph, start: u32, rng: &mut impl Rng) -> u64 {
    let mut visited = NodeBitSet::new(g.n());
    visited.insert(start);
    let mut remaining = g.n() - 1;
    let mut pos = start;
    let mut steps = 0u64;
    while remaining > 0 {
        pos = mrw_core::walk::step(g, pos, rng);
        steps += 1;
        if visited.insert(pos) {
            remaining -= 1;
        }
    }
    steps
}

fn bench_visited_repr(c: &mut Criterion) {
    let g = generators::torus_2d(32);
    let mut group = c.benchmark_group("ablation_visited");
    group.sample_size(10);
    group.bench_function("bitset", |b| {
        b.iter(|| cover_bitset(&g, 0, &mut walk_rng(12)))
    });
    group.bench_function("byte_array", |b| {
        b.iter(|| cover_bytearray(&g, 0, &mut walk_rng(12)))
    });
    group.finish();
}

fn bench_neighbor_sampling(c: &mut Criterion) {
    // Degree-4 torus: both paths are legal; compare masked against modulo.
    let g = generators::torus_2d(64);
    let mut group = c.benchmark_group("ablation_sampling");
    const STEPS: usize = 200_000;
    group.bench_function("pow2_mask(production)", |b| {
        b.iter(|| {
            let mut rng = walk_rng(13);
            let mut pos = 0u32;
            for _ in 0..STEPS {
                pos = mrw_core::walk::step(&g, pos, &mut rng); // mask path
            }
            pos
        })
    });
    group.bench_function("gen_range", |b| {
        b.iter(|| {
            let mut rng = walk_rng(13);
            let mut pos = 0u32;
            for _ in 0..STEPS {
                let d = g.degree(pos);
                pos = g.neighbor(pos, rng.gen_range(0..d));
            }
            pos
        })
    });
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    // Heavy-tailed per-trial cost (cycle cover times): dynamic
    // self-scheduling vs static chunking.
    let g = generators::cycle(512);
    let trials = 32;
    let threads = 4;
    let mut group = c.benchmark_group("ablation_scheduling");
    group.sample_size(10);
    group.bench_function("dynamic(production)", |b| {
        let cfg = EstimatorConfig::new(trials)
            .with_seed(14)
            .with_threads(threads);
        b.iter(|| CoverTimeEstimator::new(&g, 1, cfg.clone()).run_from(0))
    });
    group.bench_function("static_chunking", |b| {
        b.iter(|| {
            let seq = mrw_par::SeedSequence::new(14).child(1);
            let chunk = trials / threads;
            let sums: Vec<f64> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let g = &g;
                        s.spawn(move || {
                            let mut acc = 0.0;
                            for i in t * chunk..(t + 1) * chunk {
                                let mut rng = walk_rng(seq.seed_for(i as u64));
                                acc += mrw_core::cover_time_single(g, 0, &mut rng) as f64;
                            }
                            acc
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            sums.iter().sum::<f64>() / trials as f64
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stepping_mode,
    bench_visited_repr,
    bench_neighbor_sampling,
    bench_scheduling
);
criterion_main!(benches);
