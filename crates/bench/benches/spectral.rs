//! Bench: the spectral toolbox — dense-LU vs Gauss–Seidel hitting times,
//! CG effective resistance, Jacobi spectrum vs power iteration, and exact
//! mixing-time evolution.
//!
//! The point of the comparison is the scaling wall documented in
//! DESIGN.md: the dense fundamental-matrix route costs `O(n³)`, the
//! sparse iterative routes cost `O(m)` per sweep — the crossover decides
//! which backend each experiment uses at its `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrw_graph::generators;
use mrw_spectral::{
    effective_resistance_cg, hitting_times_all, hitting_times_to, hitting_times_to_gs,
    jacobi_eigen, mixing_time, second_eigenvalue_regular, walk_spectrum, MixingConfig,
};

fn bench_hitting_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("hitting_times_backends");
    group.sample_size(10);
    for side in [8usize, 16, 24] {
        let g = generators::torus_2d(side);
        group.bench_with_input(BenchmarkId::new("dense_lu_all_pairs", side), &g, |b, g| {
            b.iter(|| hitting_times_all(g))
        });
        group.bench_with_input(BenchmarkId::new("dense_lu_one_target", side), &g, |b, g| {
            b.iter(|| hitting_times_to(g, 0))
        });
        group.bench_with_input(
            BenchmarkId::new("gauss_seidel_one_target", side),
            &g,
            |b, g| b.iter(|| hitting_times_to_gs(g, 0, 1e-10, 1_000_000).expect("converges")),
        );
    }
    // The regime the dense backend cannot reach at all.
    let big = generators::torus_2d(64);
    group.bench_function("gauss_seidel_one_target/64", |b| {
        b.iter(|| hitting_times_to_gs(&big, 0, 1e-8, 1_000_000).expect("converges"))
    });
    group.finish();
}

fn bench_resistance_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("effective_resistance_cg");
    group.sample_size(10);
    for side in [16usize, 32, 64] {
        let g = generators::torus_2d(side);
        let target = (g.n() / 2) as u32;
        group.bench_with_input(BenchmarkId::from_parameter(side), &g, |b, g| {
            b.iter(|| effective_resistance_cg(g, 0, target, 1e-10, 200_000).expect("cg"))
        });
    }
    group.finish();
}

fn bench_eigensolvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigensolvers");
    group.sample_size(10);
    let mut rng = mrw_core::walk_rng(5);
    let g = generators::random_regular(128, 8, &mut rng).expect("regular");
    group.bench_function("jacobi_full_spectrum/128", |b| b.iter(|| walk_spectrum(&g)));
    group.bench_function("power_iteration_lambda/128", |b| {
        b.iter(|| second_eigenvalue_regular(&g, 2000))
    });
    let dense = mrw_spectral::TransitionOp::new(&g).to_dense();
    // Symmetrize P for Jacobi timing on the raw operator (regular graph:
    // P is already symmetric).
    group.bench_function("jacobi_eigen_raw/128", |b| b.iter(|| jacobi_eigen(&dense)));
    group.finish();
}

fn bench_mixing_evolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("mixing_time_exact");
    group.sample_size(10);
    for side in [8usize, 16] {
        let g = generators::torus_2d(side);
        group.bench_with_input(BenchmarkId::from_parameter(side), &g, |b, g| {
            b.iter(|| mixing_time(g, &MixingConfig::lazy()).expect("mixes"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hitting_backends,
    bench_resistance_cg,
    bench_eigensolvers,
    bench_mixing_evolution
);
criterion_main!(benches);
