//! Bench: Theorem 6 — the cycle's Θ(log k) speed-up series.
//!
//! One benchmark per `k` in the ladder; `mrw cycle` prints the series
//! itself. The interesting scaling: `C^k ≈ 2n²/ln k`, so per-trial work
//! shrinks only logarithmically with k while per-round work grows
//! linearly — wall clock is near-flat, unlike the clique bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrw_core::{CoverTimeEstimator, EstimatorConfig};
use mrw_graph::generators;

fn bench_cycle(c: &mut Criterion) {
    let g = generators::cycle(192);
    let mut group = c.benchmark_group("thm6_cycle");
    group.sample_size(10);
    for k in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = EstimatorConfig::new(12).with_seed(3);
            b.iter(|| CoverTimeEstimator::new(&g, k, cfg.clone()).run_from(0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle);
criterion_main!(benches);
