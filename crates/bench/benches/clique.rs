//! Bench: Lemma 12 — the clique coupon-collector row.
//!
//! Times `C^k(K_n)` estimation across the k ladder. Since `C^k = n·H_n/k`,
//! wall-clock per estimate should *fall* roughly like `1/k` (fewer rounds
//! to simulate) — a useful engine regression canary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrw_core::{CoverTimeEstimator, EstimatorConfig};
use mrw_graph::generators;

fn bench_clique(c: &mut Criterion) {
    let g = generators::complete_with_loops(256);
    let mut group = c.benchmark_group("lemma12_clique");
    group.sample_size(10);
    for k in [1usize, 4, 16, 64] {
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = EstimatorConfig::new(16).with_seed(2);
            b.iter(|| CoverTimeEstimator::new(&g, k, cfg.clone()).run_from(0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clique);
criterion_main!(benches);
