//! Bench: raw engine throughput — walk steps per second on graphs with
//! different degree profiles, and thread-pool scaling of the trial fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrw_core::engine::{CompiledProcess, Engine, FullCover, Process, SimpleStep};
use mrw_core::{walk_rng, CoverTimeEstimator, EstimatorConfig, WalkProcess};
use mrw_graph::generators;
use mrw_par::ThreadPool;

fn bench_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_step_throughput");
    const STEPS: u64 = 100_000;
    group.throughput(Throughput::Elements(STEPS));
    let graphs = vec![
        generators::cycle(1 << 14), // degree 2
        generators::torus_2d(128),  // degree 4 (pow2 fast path)
        generators::hypercube(14),  // degree 14
        generators::complete(4096), // degree 4095
    ];
    for g in graphs {
        group.bench_with_input(
            BenchmarkId::from_parameter(g.name().to_string()),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut rng = walk_rng(1);
                    let mut pos = 0u32;
                    for _ in 0..STEPS {
                        pos = mrw_core::walk::step(g, pos, &mut rng);
                    }
                    pos
                })
            },
        );
    }
    group.finish();
}

fn bench_trial_scaling(c: &mut Criterion) {
    let g = generators::torus_2d(24);
    let mut group = c.benchmark_group("trial_fanout_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let cfg = EstimatorConfig::new(32).with_seed(7).with_threads(t);
            b.iter(|| CoverTimeEstimator::new(&g, 2, cfg.clone()).run_from(0))
        });
    }
    group.finish();
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch_overhead");
    group.sample_size(10);
    const JOBS: usize = 10_000;
    group.throughput(Throughput::Elements(JOBS as u64));
    group.bench_function("work_stealing_pool", |b| {
        let pool = ThreadPool::new(4);
        b.iter(|| {
            for _ in 0..JOBS {
                pool.execute(|| {
                    std::hint::black_box(3u64.wrapping_mul(5));
                });
            }
            pool.join();
        })
    });
    group.finish();
}

fn bench_unified_engine_ablation(c: &mut Criterion) {
    // The refactor's two hot-path claims, measured:
    // (1) cached lazy holds (pre-built Bernoulli, one integer compare)
    //     vs the uncached reference (`WalkProcess::step`, a float draw
    //     and compare per hold decision);
    // (2) cached Metropolis acceptance (degree-reciprocal multiply) vs
    //     the uncached reference (divide per proposal).
    let g = generators::torus_2d(64);
    let mut group = c.benchmark_group("unified_engine_ablation");
    group.sample_size(10);
    const STEPS: u64 = 100_000;
    group.throughput(Throughput::Elements(STEPS));

    fn bench_kernel<P: Process>(
        group: &mut criterion::BenchmarkGroup<'_>,
        label: &str,
        g: &mrw_graph::Graph,
        mut kernel: P,
        steps: u64,
    ) {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = walk_rng(1);
                let mut pos = 0u32;
                for _ in 0..steps {
                    pos = kernel.step(g, pos, &mut rng);
                }
                pos
            })
        });
    }

    let lazy = WalkProcess::Lazy(0.5);
    bench_kernel(
        &mut group,
        "lazy_cached_bernoulli",
        &g,
        CompiledProcess::new(lazy, &g),
        STEPS,
    );
    bench_kernel(&mut group, "lazy_uncached_reference", &g, lazy, STEPS);
    let metro = WalkProcess::Metropolis;
    bench_kernel(
        &mut group,
        "metropolis_cached_recip",
        &g,
        CompiledProcess::new(metro, &g),
        STEPS,
    );
    bench_kernel(
        &mut group,
        "metropolis_uncached_reference",
        &g,
        metro,
        STEPS,
    );
    group.finish();

    // End-to-end: the one engine loop under its heaviest observer vs the
    // lightest, same trajectory length, isolating observer overhead.
    let g = generators::torus_2d(24);
    let mut group = c.benchmark_group("engine_observer_overhead");
    group.sample_size(10);
    group.bench_function("full_cover", |b| {
        b.iter(|| {
            Engine::new(&g, SimpleStep, FullCover::new(g.n()))
                .run(&[0, 0, 0, 0], &mut walk_rng(3))
                .rounds
        })
    });
    group.bench_function("pure_horizon", |b| {
        b.iter(|| {
            Engine::new(&g, SimpleStep, ())
                .cap(2000)
                .run(&[0, 0, 0, 0], &mut walk_rng(3))
                .rounds
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_step_throughput,
    bench_trial_scaling,
    bench_pool_dispatch,
    bench_unified_engine_ablation
);
criterion_main!(benches);
