//! Bench: raw engine throughput — walk steps per second on graphs with
//! different degree profiles, thread-pool scaling of the trial fan-out,
//! and the batched-vs-scalar stepping comparison, which additionally
//! emits `BENCH_engine.json` at the workspace root so CI tracks the
//! perf trajectory (see `.github/workflows/ci.yml`, bench-smoke step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrw_core::engine::{
    BatchMode, CompiledProcess, Engine, EngineArena, FullCover, Process, SimpleStep,
};
use mrw_core::{walk_rng, CoverTimeEstimator, EstimatorConfig, WalkProcess};
use mrw_graph::generators;
use mrw_par::ThreadPool;

fn bench_step_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_step_throughput");
    const STEPS: u64 = 100_000;
    group.throughput(Throughput::Elements(STEPS));
    let graphs = vec![
        generators::cycle(1 << 14), // degree 2
        generators::torus_2d(128),  // degree 4 (pow2 fast path)
        generators::hypercube(14),  // degree 14
        generators::complete(4096), // degree 4095
    ];
    for g in graphs {
        group.bench_with_input(
            BenchmarkId::from_parameter(g.name().to_string()),
            &g,
            |b, g| {
                b.iter(|| {
                    let mut rng = walk_rng(1);
                    let mut pos = 0u32;
                    for _ in 0..STEPS {
                        pos = mrw_core::walk::step(g, pos, &mut rng);
                    }
                    pos
                })
            },
        );
    }
    group.finish();
}

fn bench_trial_scaling(c: &mut Criterion) {
    let g = generators::torus_2d(24);
    let mut group = c.benchmark_group("trial_fanout_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let cfg = EstimatorConfig::new(32).with_seed(7).with_threads(t);
            b.iter(|| CoverTimeEstimator::new(&g, 2, cfg.clone()).run_from(0))
        });
    }
    group.finish();
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch_overhead");
    group.sample_size(10);
    const JOBS: usize = 10_000;
    group.throughput(Throughput::Elements(JOBS as u64));
    group.bench_function("work_stealing_pool", |b| {
        let pool = ThreadPool::new(4);
        b.iter(|| {
            for _ in 0..JOBS {
                pool.execute(|| {
                    std::hint::black_box(3u64.wrapping_mul(5));
                });
            }
            pool.join();
        })
    });
    group.finish();
}

fn bench_unified_engine_ablation(c: &mut Criterion) {
    // The refactor's two hot-path claims, measured:
    // (1) cached lazy holds (pre-built Bernoulli, one integer compare)
    //     vs the uncached reference (`WalkProcess::step`, a float draw
    //     and compare per hold decision);
    // (2) cached Metropolis acceptance (degree-reciprocal multiply) vs
    //     the uncached reference (divide per proposal).
    let g = generators::torus_2d(64);
    let mut group = c.benchmark_group("unified_engine_ablation");
    group.sample_size(10);
    const STEPS: u64 = 100_000;
    group.throughput(Throughput::Elements(STEPS));

    fn bench_kernel<P: Process>(
        group: &mut criterion::BenchmarkGroup<'_>,
        label: &str,
        g: &mrw_graph::Graph,
        mut kernel: P,
        steps: u64,
    ) {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rng = walk_rng(1);
                let mut pos = 0u32;
                for _ in 0..steps {
                    pos = kernel.step(g, pos, &mut rng);
                }
                pos
            })
        });
    }

    let lazy = WalkProcess::Lazy(0.5);
    bench_kernel(
        &mut group,
        "lazy_cached_bernoulli",
        &g,
        CompiledProcess::new(lazy, &g),
        STEPS,
    );
    bench_kernel(&mut group, "lazy_uncached_reference", &g, lazy, STEPS);
    let metro = WalkProcess::Metropolis;
    bench_kernel(
        &mut group,
        "metropolis_cached_recip",
        &g,
        CompiledProcess::new(metro, &g),
        STEPS,
    );
    bench_kernel(
        &mut group,
        "metropolis_uncached_reference",
        &g,
        metro,
        STEPS,
    );
    group.finish();

    // End-to-end: the one engine loop under its heaviest observer vs the
    // lightest, same trajectory length, isolating observer overhead.
    let g = generators::torus_2d(24);
    let mut group = c.benchmark_group("engine_observer_overhead");
    group.sample_size(10);
    group.bench_function("full_cover", |b| {
        b.iter(|| {
            Engine::new(&g, SimpleStep, FullCover::new(g.n()))
                .run(&[0, 0, 0, 0], &mut walk_rng(3))
                .rounds
        })
    });
    group.bench_function("pure_horizon", |b| {
        b.iter(|| {
            Engine::new(&g, SimpleStep, ())
                .cap(2000)
                .run(&[0, 0, 0, 0], &mut walk_rng(3))
                .rounds
        })
    });
    group.finish();
}

/// Best-of-`reps` ns/step for one engine path (pure horizon run, so the
/// two paths differ only in stepping machinery). Generic over the graph
/// backend so CSR and implicit runs share one measurement harness.
fn engine_ns_per_step<G: mrw_graph::GraphBackend>(
    g: &G,
    start: u32,
    k: usize,
    batch: BatchMode,
    rounds: u64,
    reps: usize,
) -> f64 {
    let starts = vec![start; k];
    let mut arena = EngineArena::new();
    // Warmup: sizes the arena and faults the graph into cache.
    let _ = Engine::new(g, SimpleStep, ())
        .batch(batch)
        .cap(rounds)
        .run_with(&starts, &mut walk_rng(1), &mut arena);
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let t0 = std::time::Instant::now();
        let out = Engine::new(g, SimpleStep, ())
            .batch(batch)
            .cap(rounds)
            .run_with(&starts, &mut walk_rng(2 + rep as u64), &mut arena);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt * 1e9 / (out.rounds * k as u64) as f64);
    }
    best
}

/// One graph of the perf-trajectory matrix.
struct MatrixCase {
    g: mrw_graph::Graph,
    ks: Vec<usize>,
    /// Regular families feed the CI perf gate (fixed 1.3× floor); the
    /// irregular rows are tracked but gated only against the JSON diff.
    regular: bool,
    /// Implicit twin where one exists: measured batched at the same `k`
    /// and reported as an implicit-vs-CSR column.
    implicit: Option<mrw_graph::ImplicitGraph>,
}

/// The perf-trajectory measurement: batched vs scalar ns/step across the
/// degree-profile matrix (regular: cycle, torus; irregular: barbell,
/// star, a connectivity-regime G(n,p)), plus the implicit backend's
/// batched column where an implicit twin exists. Written to
/// `BENCH_engine.json` (workspace root, or `$BENCH_ENGINE_JSON`) for CI
/// to archive and gate on.
fn bench_batched_vs_scalar(_c: &mut Criterion) {
    use mrw_graph::ImplicitGraph;
    const ROUNDS: u64 = 1_500;
    const REPS: usize = 7;
    let cases = vec![
        MatrixCase {
            g: generators::cycle(1 << 14),
            ks: vec![256],
            regular: true,
            implicit: Some(ImplicitGraph::cycle(1 << 14)),
        },
        MatrixCase {
            g: generators::torus_2d(256),
            ks: vec![256, 1024],
            regular: true,
            implicit: Some(ImplicitGraph::torus_2d(256)),
        },
        MatrixCase {
            g: generators::barbell(201),
            ks: vec![256, 1024],
            regular: false,
            implicit: None,
        },
        MatrixCase {
            g: generators::star(4096),
            ks: vec![256],
            regular: false,
            implicit: None,
        },
        MatrixCase {
            g: generators::erdos_renyi_connected_regime(4096, 1.5, &mut walk_rng(11)),
            ks: vec![256],
            regular: false,
            implicit: None,
        },
    ];
    let mut rows = Vec::new();
    for case in &cases {
        // A G(n,p) draw can leave low-index vertices isolated; start every
        // walk on the first vertex that actually has edges.
        let start = (0..case.g.n() as u32)
            .find(|&v| case.g.degree(v) > 0)
            .expect("matrix graph has at least one edge");
        for &k in &case.ks {
            let scalar = engine_ns_per_step(&case.g, start, k, BatchMode::Never, ROUNDS, REPS);
            let batched = engine_ns_per_step(&case.g, start, k, BatchMode::Always, ROUNDS, REPS);
            let speedup = scalar / batched;
            let mut implicit_col = String::new();
            let mut implicit_note = String::new();
            if let Some(im) = &case.implicit {
                let ib = engine_ns_per_step(im, start, k, BatchMode::Always, ROUNDS, REPS);
                let ratio = ib / batched;
                implicit_col = format!(
                    ", \"implicit_batched_ns_per_step\": {ib:.3}, \
                     \"implicit_over_csr\": {ratio:.3}"
                );
                implicit_note = format!("  implicit {ib:.2} ns/step ({ratio:.2}x csr)");
            }
            println!(
                "engine_batched_vs_scalar/{}/k={k}     scalar {scalar:.2} ns/step  \
                 batched {batched:.2} ns/step  speedup {speedup:.2}x{implicit_note}",
                case.g.name()
            );
            rows.push(format!(
                "    {{\"graph\": \"{}\", \"k\": {k}, \"regular\": {}, \
                 \"scalar_ns_per_step\": {scalar:.3}, \
                 \"batched_ns_per_step\": {batched:.3}, \"speedup\": {speedup:.3}{implicit_col}}}",
                case.g.name(),
                case.regular
            ));
        }
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_batched_vs_scalar\",\n  \"unit\": \"ns_per_step\",\n  \
         \"rounds\": {ROUNDS},\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let path = std::env::var("BENCH_ENGINE_JSON").unwrap_or_else(|_| {
        // crates/bench/../../ == the workspace root.
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string()
    });
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_step_throughput,
    bench_trial_scaling,
    bench_pool_dispatch,
    bench_unified_engine_ablation,
    bench_batched_vs_scalar
);
criterion_main!(benches);
