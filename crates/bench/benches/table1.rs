//! Bench: regenerating one row of Table 1 per family.
//!
//! Times the full measurement pipeline (graph build → `C` baseline →
//! `C^k` at `k = ⌊ln n⌋`) for each of the paper's seven families at a
//! fixed CI-scale size. The shape itself (who wins, by what factor) is
//! printed by `mrw table1`; this bench tracks the cost of producing it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrw_core::{speedup_sweep, EstimatorConfig};
use mrw_graph::{generators as gen, Graph};

fn families() -> Vec<(&'static str, Graph)> {
    let mut rng = mrw_core::walk_rng(0x7AB1E);
    vec![
        ("cycle", gen::cycle(144)),
        ("grid2d", gen::torus_2d(12)),
        ("grid3d", gen::torus(&[5, 5, 5])),
        ("hypercube", gen::hypercube(7)),
        ("complete", gen::complete(144)),
        ("expander", gen::random_regular(144, 8, &mut rng).unwrap()),
        ("er", gen::erdos_renyi_connected_regime(144, 3.0, &mut rng)),
    ]
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_row");
    group.sample_size(10);
    let cfg = EstimatorConfig::new(16).with_seed(1);
    for (name, g) in families() {
        let k = ((g.n() as f64).ln().floor() as usize).max(2);
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| speedup_sweep(g, 0, &[k], &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
