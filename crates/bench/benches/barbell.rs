//! Bench: Theorems 7/26 + Figure 1 — the barbell's exponential speed-up.
//!
//! The 1-walk estimate simulates Θ(n²) steps per trial; the k = 20 ln n
//! estimate only Θ(n·k). The wall-clock gap between the two benchmarks *is*
//! the exponential speed-up, measured in seconds instead of rounds.

use criterion::{criterion_group, criterion_main, Criterion};
use mrw_core::{bounds, CoverTimeEstimator, EstimatorConfig};
use mrw_graph::generators::{barbell, barbell_center};

fn bench_barbell(c: &mut Criterion) {
    let n = 129;
    let g = barbell(n);
    let vc = barbell_center(n);
    let k = bounds::barbell_k(n as u64) as usize;
    let mut group = c.benchmark_group("thm7_barbell");
    group.sample_size(10);
    group.bench_function("single_walk_from_center", |b| {
        let cfg = EstimatorConfig::new(8).with_seed(4);
        b.iter(|| CoverTimeEstimator::new(&g, 1, cfg.clone()).run_from(vc))
    });
    group.bench_function("20ln_n_walks_from_center", |b| {
        let cfg = EstimatorConfig::new(8).with_seed(4);
        b.iter(|| CoverTimeEstimator::new(&g, k, cfg.clone()).run_from(vc))
    });
    group.finish();
}

criterion_group!(benches, bench_barbell);
criterion_main!(benches);
