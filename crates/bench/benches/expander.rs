//! Bench: Theorems 3/18 — expander linear speed-up, plus the spectral
//! certification step (power iteration) the experiment runs first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrw_core::{CoverTimeEstimator, EstimatorConfig};
use mrw_graph::generators;
use mrw_spectral::power::second_eigenvalue_regular;

fn bench_expander(c: &mut Criterion) {
    let mut rng = mrw_core::walk_rng(6);
    let g = generators::random_regular(256, 8, &mut rng).unwrap();
    let mut group = c.benchmark_group("thm18_expander");
    group.sample_size(10);
    group.bench_function("certify_lambda_power_iteration", |b| {
        b.iter(|| second_eigenvalue_regular(&g, 500))
    });
    for k in [1usize, 16, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let cfg = EstimatorConfig::new(12).with_seed(6);
            b.iter(|| CoverTimeEstimator::new(&g, k, cfg.clone()).run_from(0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expander);
criterion_main!(benches);
