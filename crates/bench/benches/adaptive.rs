//! Bench: adaptive (precision-targeted) vs fixed trial budgets.
//!
//! Measures what sequential stopping buys and what it costs:
//!
//! * `adaptive_vs_fixed` — an easy instance (small cycle) estimated to a
//!   ±10% relative half-width against a fixed budget the size of the
//!   adaptive cap. The adaptive run should finish in a small fraction of
//!   the fixed run's time — that ratio *is* the feature.
//! * `wave_overhead` — the same consumed trial count spent through the
//!   flat fan-out vs the wave-by-wave `par_map_chunks_with` path, so the
//!   per-wave dispatch + rule-evaluation overhead stays visible and
//!   bounded.

use criterion::{criterion_group, criterion_main, Criterion};
use mrw_core::{CoverTimeEstimator, EstimatorConfig, Precision};
use mrw_graph::generators;

fn bench_adaptive_vs_fixed(c: &mut Criterion) {
    let g = generators::cycle(64);
    let mut group = c.benchmark_group("adaptive_vs_fixed");
    group.sample_size(10);

    let rule = Precision::relative(0.10).with_max_trials(4096);
    group.bench_function("adaptive_rel10pct", |b| {
        let cfg = EstimatorConfig::adaptive(rule).with_seed(3);
        b.iter(|| CoverTimeEstimator::new(&g, 4, cfg.clone()).run_from(0))
    });
    group.bench_function("fixed_at_cap", |b| {
        let cfg = EstimatorConfig::new(4096).with_seed(3);
        b.iter(|| CoverTimeEstimator::new(&g, 4, cfg.clone()).run_from(0))
    });
    group.finish();
}

fn bench_wave_overhead(c: &mut Criterion) {
    let g = generators::cycle(64);
    // Pin the adaptive consumed count once, then time a fixed budget of
    // exactly that size through both fan-out paths.
    let rule = Precision::relative(0.10).with_max_trials(4096);
    let consumed = CoverTimeEstimator::new(&g, 4, EstimatorConfig::adaptive(rule).with_seed(3))
        .run_from(0)
        .consumed_trials() as usize;

    let mut group = c.benchmark_group("wave_overhead");
    group.sample_size(10);
    group.bench_function(format!("flat_{consumed}_trials"), |b| {
        let cfg = EstimatorConfig::new(consumed).with_seed(3);
        b.iter(|| CoverTimeEstimator::new(&g, 4, cfg.clone()).run_from(0))
    });
    group.bench_function(format!("waves_to_{consumed}_trials"), |b| {
        // An absolute rule no cover-time sample can satisfy, capped at the
        // same consumed count: forces the wave path to run cap trials.
        let hopeless = Precision::absolute(1e-9)
            .with_min_trials(2)
            .with_max_trials(consumed);
        let cfg = EstimatorConfig::adaptive(hopeless).with_seed(3);
        b.iter(|| CoverTimeEstimator::new(&g, 4, cfg.clone()).run_from(0))
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive_vs_fixed, bench_wave_overhead);
criterion_main!(benches);
