//! Bench: the appendix experiments end-to-end at quick scale.
//!
//! One Criterion target per appendix artifact — Lemma 16's composition
//! grid, the Lemma 19 / Corollary 20 expander probabilities, the exact
//! Proposition 23 binomial sums, Theorem 26's barbell proof events, the
//! exact-DP validation zoo, and the Theorem 24 projection coupling — so
//! `cargo bench -p mrw-bench --bench appendix` regenerates the whole
//! appendix the same way the table/figure benches regenerate the body.

use criterion::{criterion_group, criterion_main, Criterion};
use mrw_core::experiments::{barbell_events, exact_zoo, lemma16, lemma19, projection, prop23};

fn bench_lemma16(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix");
    group.sample_size(10);
    group.bench_function("lemma16_composition_grid", |b| {
        let cfg = lemma16::Config::quick();
        b.iter(|| lemma16::run(&cfg))
    });
    group.finish();
}

fn bench_lemma19(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix");
    group.sample_size(10);
    group.bench_function("lemma19_cor20_expander", |b| {
        let cfg = lemma19::Config::quick();
        b.iter(|| lemma19::run(&cfg))
    });
    group.finish();
}

fn bench_prop23(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix");
    group.bench_function("prop23_exact_binomial", |b| {
        let cfg = prop23::Config::default(); // exact sums are cheap
        b.iter(|| prop23::run(&cfg))
    });
    group.finish();
}

fn bench_barbell_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix");
    group.sample_size(10);
    group.bench_function("thm26_barbell_events", |b| {
        let cfg = barbell_events::Config::quick();
        b.iter(|| barbell_events::run(&cfg))
    });
    group.finish();
}

fn bench_exact_zoo(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix");
    group.sample_size(10);
    group.bench_function("exact_dp_zoo", |b| {
        let mut cfg = exact_zoo::Config::quick();
        cfg.trials = 500; // DP dominates; keep MC arm light for the bench
        b.iter(|| exact_zoo::run(&cfg))
    });
    group.finish();
}

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("appendix");
    group.sample_size(10);
    group.bench_function("thm24_projection_coupling", |b| {
        let cfg = projection::Config::quick();
        b.iter(|| projection::run(&cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lemma16,
    bench_lemma19,
    bench_prop23,
    bench_barbell_events,
    bench_exact_zoo,
    bench_projection
);
criterion_main!(benches);
