//! Bench: the exact computations behind Theorems 1, 9, and 13 — the
//! fundamental-matrix hitting-time solve, the single-target solve, and
//! exact mixing-time evolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrw_graph::generators;
use mrw_spectral::{hitting_times_all, hitting_times_to, mixing_time, MixingConfig};

fn bench_hitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_hitting_times");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let g = generators::torus_2d((n as f64).sqrt() as usize);
        group.bench_with_input(
            BenchmarkId::new("fundamental_matrix_all_pairs", g.n()),
            &g,
            |b, g| b.iter(|| hitting_times_all(g)),
        );
        group.bench_with_input(
            BenchmarkId::new("single_target_solve", g.n()),
            &g,
            |b, g| b.iter(|| hitting_times_to(g, 0)),
        );
    }
    group.finish();
}

fn bench_mixing(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_mixing_time");
    group.sample_size(10);
    let graphs = vec![
        generators::hypercube(8),
        generators::torus_2d(16),
        generators::complete(256),
    ];
    for g in graphs {
        group.bench_with_input(
            BenchmarkId::from_parameter(g.name().to_string()),
            &g,
            |b, g| {
                let cfg = MixingConfig::lazy()
                    .with_starts(vec![0])
                    .with_max_steps(2_000_000);
                b.iter(|| mixing_time(g, &cfg))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hitting, bench_mixing);
criterion_main!(benches);
