//! Bench: walk-process ablation (simple vs lazy vs Metropolis), partial
//! coverage, and visit-count tallying.
//!
//! Ablation #5 of DESIGN.md §4: the process abstraction
//! ([`WalkProcess`](mrw_core::process::WalkProcess)) wraps the raw
//! stepping loop in a `match` — this group verifies the simple-process
//! path costs the same as the direct engine, and prices the lazy RNG draw
//! and the Metropolis acceptance test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrw_core::partial::kwalk_partial_cover_rounds;
use mrw_core::process::WalkProcess;
use mrw_core::visits::kwalk_visit_counts;
use mrw_core::{kwalk_cover_rounds_same_start, walk_rng, KWalkMode};
use mrw_graph::generators;

fn bench_process_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("process_step_throughput");
    const STEPS: u64 = 100_000;
    group.throughput(Throughput::Elements(STEPS));
    let g = generators::torus_2d(64);
    let processes = [
        ("raw_engine", None),
        ("simple", Some(WalkProcess::Simple)),
        ("lazy_0.5", Some(WalkProcess::Lazy(0.5))),
        ("metropolis", Some(WalkProcess::Metropolis)),
    ];
    for (label, process) in processes {
        group.bench_with_input(BenchmarkId::from_parameter(label), &process, |b, p| {
            b.iter(|| {
                let mut rng = walk_rng(1);
                let mut pos = 0u32;
                for _ in 0..STEPS {
                    pos = match p {
                        None => mrw_core::walk::step(&g, pos, &mut rng),
                        Some(proc_) => proc_.step(&g, pos, &mut rng),
                    };
                }
                pos
            })
        });
    }
    group.finish();
}

fn bench_partial_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("partial_cover");
    group.sample_size(20);
    let g = generators::torus_2d(24);
    let starts = vec![0u32; 4];
    for pct in [50usize, 90, 100] {
        let target = g.n() * pct / 100;
        group.bench_with_input(BenchmarkId::from_parameter(pct), &target, |b, &t| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                kwalk_partial_cover_rounds(&g, &starts, t, &mut walk_rng(seed))
            })
        });
    }
    group.finish();
}

fn bench_visit_tally(c: &mut Criterion) {
    let mut group = c.benchmark_group("visit_count_tally");
    group.sample_size(20);
    const ROUNDS: u64 = 10_000;
    group.throughput(Throughput::Elements(ROUNDS * 8));
    let g = generators::torus_2d(32);
    let starts = vec![0u32; 8];
    group.bench_function("torus_8walks", |b| {
        b.iter(|| kwalk_visit_counts(&g, &starts, ROUNDS, WalkProcess::Simple, &mut walk_rng(3)))
    });
    group.finish();
}

fn bench_process_vs_engine_cover(c: &mut Criterion) {
    // Same process, two code paths: the direct kwalk engine and the
    // WalkProcess indirection — the measured C^k must match (tests) and
    // the runtime overhead should be within noise (this bench).
    let mut group = c.benchmark_group("cover_engine_vs_process");
    group.sample_size(20);
    let g = generators::torus_2d(16);
    group.bench_function("kwalk_engine", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            kwalk_cover_rounds_same_start(
                &g,
                0,
                4,
                KWalkMode::RoundSynchronous,
                &mut walk_rng(seed),
            )
        })
    });
    group.bench_function("process_simple", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mrw_core::process::kwalk_cover_rounds_process(
                &g,
                &[0, 0, 0, 0],
                WalkProcess::Simple,
                &mut walk_rng(seed),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_process_step,
    bench_partial_cover,
    bench_visit_tally,
    bench_process_vs_engine_cover
);
criterion_main!(benches);
