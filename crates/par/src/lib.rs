//! Parallel execution substrate for Monte-Carlo trial fan-out.
//!
//! The estimators in `mrw-core` run hundreds of independent random-walk
//! trials; this crate supplies the machinery to spread them over cores
//! without giving up determinism:
//!
//! * [`ThreadPool`] — a persistent work-stealing pool (crossbeam deques:
//!   one injector, one worker deque per thread, sibling stealing, parked
//!   idle workers) for `'static` jobs.
//! * [`scope`] — borrowing data-parallel helpers ([`par_map`],
//!   [`par_for_each`], [`par_reduce`], [`par_map_with`]) built on
//!   `std::thread::scope` with dynamic self-scheduling, so closures can
//!   borrow the graph without `Arc`, plus [`par_map_chunks_with`] — the
//!   wave-by-wave fan-out that adaptive (precision-targeted) estimators
//!   use to evaluate a sequential stopping rule between waves.
//! * [`seeds`] — counter-based seed derivation (SplitMix64) so that trial
//!   `i` sees the same RNG stream no matter which thread runs it or how many
//!   threads exist. Results are bit-for-bit reproducible across thread
//!   counts.
//!
//! Determinism contract: all `par_*` functions return results indexed by
//! item, not by completion order, and nothing in this crate ever mixes a
//! thread id into a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod scope;
pub mod seeds;

pub use pool::ThreadPool;
pub use scope::{
    available_threads, par_for_each, par_map, par_map_chunks_with, par_map_with, par_reduce,
};
pub use seeds::SeedSequence;
