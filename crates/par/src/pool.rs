//! A persistent work-stealing thread pool.
//!
//! Architecture (the classic Chase–Lev arrangement, as used by rayon):
//!
//! * one global [`crossbeam::deque::Injector`] receives jobs submitted from
//!   outside the pool;
//! * each worker owns a local LIFO [`crossbeam::deque::Worker`] deque and
//!   exposes a [`crossbeam::deque::Stealer`] to its siblings;
//! * an idle worker tries: local pop → injector steal → sibling steal, and
//!   parks on a condvar when everything is empty.
//!
//! Job completion is tracked with a `(Mutex<usize>, Condvar)` latch so
//! [`ThreadPool::join`] can block until the pool is quiescent.
//!
//! The pool accepts `'static` jobs. For borrowing data-parallel loops, use
//! [`crate::scope`] instead — the estimators do; the pool exists for
//! fire-and-forget pipelines (e.g. streaming experiment shards from the CLI)
//! and as the subject of the scheduling ablation bench.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    /// Jobs submitted but not yet finished executing.
    pending: AtomicUsize,
    /// Set when the pool is shutting down.
    shutdown: AtomicBool,
    /// Sleep/wake machinery for idle workers.
    sleep_mutex: Mutex<()>,
    sleep_cv: Condvar,
    /// Quiescence latch for `join`.
    done_mutex: Mutex<()>,
    done_cv: Condvar,
}

impl Shared {
    fn notify_one(&self) {
        let _g = self.sleep_mutex.lock();
        self.sleep_cv.notify_one();
    }

    fn notify_all(&self) {
        let _g = self.sleep_mutex.lock();
        self.sleep_cv.notify_all();
    }

    fn job_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.done_mutex.lock();
            self.done_cv.notify_all();
        }
    }
}

/// A fixed-size work-stealing thread pool.
///
/// ```
/// use mrw_par::ThreadPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let sum = Arc::new(AtomicU64::new(0));
/// for i in 0..100u64 {
///     let sum = Arc::clone(&sum);
///     pool.execute(move || {
///         sum.fetch_add(i, Ordering::Relaxed);
///     });
/// }
/// pool.join();
/// assert_eq!(sum.load(Ordering::Relaxed), 4950);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (`threads ≥ 1`).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one thread");
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers: Vec<Stealer<Job>> = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_mutex: Mutex::new(()),
            sleep_cv: Condvar::new(),
            done_mutex: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(idx, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mrw-worker-{idx}"))
                    .spawn(move || worker_loop(idx, local, shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Spawns a pool sized to the machine
    /// (`std::thread::available_parallelism`).
    pub fn with_default_size() -> Self {
        Self::new(crate::scope::available_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submits a job for execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.injector.push(Box::new(job));
        self.shared.notify_one();
    }

    /// Blocks until every submitted job has finished.
    ///
    /// Jobs may themselves submit more jobs; `join` waits for the transitive
    /// closure to drain.
    pub fn join(&self) {
        let mut guard = self.shared.done_mutex.lock();
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            self.shared.done_cv.wait(&mut guard);
        }
    }

    /// Number of jobs submitted but not yet completed.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.join();
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn find_job(idx: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    // Drain a batch from the injector into the local deque, then retry.
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            Steal::Success(job) => return Some(job),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    // Steal from siblings, starting after our own index to spread load.
    let n = shared.stealers.len();
    for off in 1..n {
        let victim = (idx + off) % n;
        loop {
            match shared.stealers[victim].steal() {
                Steal::Success(job) => return Some(job),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn worker_loop(idx: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        if let Some(job) = find_job(idx, &local, &shared) {
            job();
            shared.job_finished();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park until new work arrives. Re-check the queues under the lock to
        // avoid a lost wakeup between the failed find_job and the wait.
        let mut guard = shared.sleep_mutex.lock();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if shared.injector.is_empty() && shared.pending.load(Ordering::Acquire) == 0 {
            shared.sleep_cv.wait(&mut guard);
        } else if shared.injector.is_empty() {
            // Pending jobs exist but are on other workers' deques; naps
            // bounded so we retry stealing soon.
            shared
                .sleep_cv
                .wait_for(&mut guard, std::time::Duration::from_millis(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn join_on_empty_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.join();
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn nested_submission() {
        let pool = Arc::new(ThreadPool::new(3));
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            let p = Arc::clone(&pool);
            pool.execute(move || {
                for _ in 0..10 {
                    let c2 = Arc::clone(&c);
                    p.execute(move || {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..50u64 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 1225);
    }

    #[test]
    fn drop_joins_outstanding_work() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropped here without an explicit join.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn reuse_after_join() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for round in 0..3 {
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.join();
            assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 100);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ThreadPool::new(0);
    }
}
