//! Counter-based seed derivation for reproducible parallel Monte-Carlo.
//!
//! Every estimator owns a master seed. Trial `i` derives its own RNG seed as
//! a pure function of `(master, i)` — never of the executing thread — so the
//! estimate is identical whether it runs on 1 thread or 64. The derivation
//! is SplitMix64 applied to the master XOR a golden-ratio-scrambled counter,
//! which is the standard way to fan a single seed into decorrelated streams.

/// Deterministic seed fan-out from one master seed.
///
/// ```
/// use mrw_par::SeedSequence;
/// let seq = SeedSequence::new(42);
/// let a = seq.seed_for(0);
/// let b = seq.seed_for(1);
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).seed_for(0)); // pure function
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

const GOLDEN: u64 = 0x9e3779b97f4a7c15;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Seed for stream `index`; a pure function of `(master, index)`.
    pub fn seed_for(&self, index: u64) -> u64 {
        // Two rounds: one to mix the counter, one to mix it with the master.
        splitmix64(self.master ^ splitmix64(index.wrapping_mul(GOLDEN) ^ 0x5851f42d4c957f2d))
    }

    /// A child sequence for a named sub-experiment, so different parts of an
    /// experiment (e.g. the `C` arm and the `C^k` arm) draw decorrelated
    /// streams from the same master seed.
    pub fn child(&self, label: u64) -> SeedSequence {
        SeedSequence {
            master: splitmix64(self.master ^ label.wrapping_mul(0xd1342543de82ef95)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let a = SeedSequence::new(7);
        let b = SeedSequence::new(7);
        for i in 0..100 {
            assert_eq!(a.seed_for(i), b.seed_for(i));
        }
    }

    #[test]
    fn distinct_streams() {
        let seq = SeedSequence::new(123);
        let seeds: HashSet<u64> = (0..10_000).map(|i| seq.seed_for(i)).collect();
        assert_eq!(seeds.len(), 10_000, "seed collision within one master");
    }

    #[test]
    fn masters_decorrelated() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        let overlap = (0..1000)
            .filter(|&i| a.seed_for(i) == b.seed_for(i))
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn children_differ_from_parent_and_each_other() {
        let root = SeedSequence::new(99);
        let c1 = root.child(1);
        let c2 = root.child(2);
        assert_ne!(c1, c2);
        assert_ne!(c1.seed_for(0), root.seed_for(0));
        assert_ne!(c1.seed_for(0), c2.seed_for(0));
        // Same label twice gives the same child.
        assert_eq!(root.child(1), root.child(1));
    }

    #[test]
    fn zero_master_is_fine() {
        let seq = SeedSequence::new(0);
        let s: HashSet<u64> = (0..64).map(|i| seq.seed_for(i)).collect();
        assert_eq!(s.len(), 64);
        assert!(
            !s.contains(&0),
            "derived seed should not be the weak value 0"
        );
    }

    #[test]
    fn low_bit_counter_avalanche() {
        // Adjacent counters should differ in roughly half the bits.
        let seq = SeedSequence::new(0xabcdef);
        let mut total = 0u32;
        for i in 0..256u64 {
            total += (seq.seed_for(i) ^ seq.seed_for(i + 1)).count_ones();
        }
        let avg = total as f64 / 256.0;
        assert!(avg > 24.0 && avg < 40.0, "poor avalanche: {avg}");
    }
}
