//! Borrowing data-parallel loops with dynamic self-scheduling.
//!
//! `std::thread::scope` lets worker closures borrow the caller's data (the
//! graph, configuration, output buffers) without `Arc`. Work distribution is
//! dynamic: workers repeatedly claim the next chunk of indices from a shared
//! atomic cursor, so an unlucky thread that draws slow trials (cover times
//! are heavy-tailed!) does not become the critical path the way static
//! chunking would.
//!
//! All functions return results **ordered by item index**, never by
//! completion order, preserving determinism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Chunk size heuristic: aim for ~4 chunks per thread to amortize the atomic
/// claim while keeping the tail balanced, clamped to `[1, 64]`.
fn default_chunk(items: usize, threads: usize) -> usize {
    if items == 0 || threads == 0 {
        return 1;
    }
    (items / (threads * 4)).clamp(1, 64)
}

/// Maps `f` over `0..items` with up to `threads` worker threads, returning
/// `Vec<R>` in index order.
///
/// `f` must be `Sync` because several threads call it concurrently; per-item
/// state should be derived from the index (e.g. via
/// [`crate::seeds::SeedSequence`]).
///
/// ```
/// let squares = mrw_par::par_map(10, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
pub fn par_map<R, F>(items: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i| f(i))
}

/// [`par_map`] with a per-worker scratch workspace: each worker thread
/// calls `init` exactly once, then threads its workspace mutably through
/// every item it processes. This is how the walk estimators keep one
/// `EngineArena` (position buffers, visited bitsets, RNG blocks) per
/// worker and reuse it across a fixed-budget `(start × trial)` fan-out
/// instead of reallocating per trial. (Adaptive budgets go through
/// [`par_map_chunks_with`], which pools the same workspaces across
/// waves.)
///
/// Determinism contract: which worker (and therefore which workspace
/// instance) processes an item is scheduling-dependent, so `f`'s *result*
/// must be a pure function of the index alone — the workspace is scratch
/// memory, never a carrier of information between items. Results are
/// returned in index order, as with [`par_map`].
///
/// ```
/// let squares = mrw_par::par_map_with(
///     5,
///     2,
///     || Vec::<u64>::new(),
///     |scratch, i| {
///         scratch.clear(); // reused allocation, same answer every time
///         scratch.extend((0..=i as u64).map(|x| x * x));
///         *scratch.last().unwrap()
///     },
/// );
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_map_with<S, R, I, F>(items: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    if items == 0 {
        return Vec::new();
    }
    let threads = threads.min(items);
    if threads == 1 {
        let mut state = init();
        return (0..items).map(|i| f(&mut state, i)).collect();
    }
    let chunk = default_chunk(items, threads);
    let cursor = AtomicUsize::new(0);
    // Each worker accumulates (start_index, chunk_results) pairs locally and
    // publishes once at the end: no per-item synchronization.
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items {
                        break;
                    }
                    let end = (start + chunk).min(items);
                    let mut out = Vec::with_capacity(end - start);
                    for i in start..end {
                        out.push(f(&mut state, i));
                    }
                    local.push((start, out));
                }
                if !local.is_empty() {
                    collected.lock().expect("poisoned").extend(local);
                }
            });
        }
    });

    let mut parts = collected.into_inner().expect("poisoned");
    parts.sort_by_key(|(start, _)| *start);
    let mut result = Vec::with_capacity(items);
    for (_, chunk_vals) in parts {
        result.extend(chunk_vals);
    }
    debug_assert_eq!(result.len(), items);
    result
}

/// Chunked (wave-by-wave) fan-out with per-worker workspaces and a
/// sequential stopping rule evaluated between waves — the substrate for
/// adaptive Monte-Carlo trial budgets.
///
/// Items are dispatched in *waves*. After each wave completes, `control`
/// is called with the full index-ordered result prefix and returns how
/// many more items to dispatch (`0` stops; the count is clamped so the
/// total never exceeds `cap`). `control(&[])` sizes the first wave.
/// Within a wave, work distribution is dynamic exactly as in
/// [`par_map_with`]; worker workspaces are pooled and reused **across**
/// waves, so an adaptive run allocates per-worker state once, not once
/// per wave.
///
/// Determinism contract: as with [`par_map_with`], `f`'s result must be a
/// pure function of the index alone. Because `control` only ever sees
/// index-ordered prefixes whose contents are schedule-independent, the
/// *number of items consumed* is also a pure function of
/// `(f, control, cap)` — byte-identical across thread counts. This is
/// what lets an adaptive estimator promise the same consumed-trial count
/// on 1 or 64 threads.
///
/// ```
/// // Keep sampling in waves of 4 until the running sum reaches 100.
/// let results = mrw_par::par_map_chunks_with(
///     1000,
///     2,
///     || (),
///     |(), i| i as u64,
///     |sofar: &[u64]| {
///         if sofar.iter().sum::<u64>() >= 100 {
///             0
///         } else {
///             4
///         }
///     },
/// );
/// // control runs at the 4/8/12/16-item boundaries, where the prefix
/// // sums are 6, 28, 66, 120 — it first sees >= 100 at 16 items.
/// assert_eq!(results, (0..16).collect::<Vec<u64>>());
/// ```
pub fn par_map_chunks_with<S, R, I, F, C>(
    cap: usize,
    threads: usize,
    init: I,
    f: F,
    mut control: C,
) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
    C: FnMut(&[R]) -> usize,
{
    assert!(threads >= 1, "need at least one thread");
    let mut results: Vec<R> = Vec::new();
    // Workspaces outlive individual waves: a worker pops one (or inits on
    // first use), and returns it when its wave ends.
    let pool: Mutex<Vec<S>> = Mutex::new(Vec::new());
    while results.len() < cap {
        let wave = control(&results).min(cap - results.len());
        if wave == 0 {
            break;
        }
        let lo = results.len();
        let wave_threads = threads.min(wave);
        if wave_threads == 1 {
            let mut state = pool.lock().expect("poisoned").pop().unwrap_or_else(&init);
            results.extend((lo..lo + wave).map(|i| f(&mut state, i)));
            pool.lock().expect("poisoned").push(state);
            continue;
        }
        let chunk = default_chunk(wave, wave_threads);
        let cursor = AtomicUsize::new(lo);
        let hi = lo + wave;
        let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..wave_threads {
                s.spawn(|| {
                    let mut state = pool.lock().expect("poisoned").pop().unwrap_or_else(&init);
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= hi {
                            break;
                        }
                        let end = (start + chunk).min(hi);
                        let mut out = Vec::with_capacity(end - start);
                        for i in start..end {
                            out.push(f(&mut state, i));
                        }
                        local.push((start, out));
                    }
                    if !local.is_empty() {
                        collected.lock().expect("poisoned").extend(local);
                    }
                    pool.lock().expect("poisoned").push(state);
                });
            }
        });
        let mut parts = collected.into_inner().expect("poisoned");
        parts.sort_by_key(|(start, _)| *start);
        for (_, chunk_vals) in parts {
            results.extend(chunk_vals);
        }
        debug_assert_eq!(results.len(), hi);
    }
    results
}

/// Runs `f` for every index in `0..items` in parallel, discarding results.
pub fn par_for_each<F>(items: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_map(items, threads, f);
}

/// Parallel map-reduce: maps `f` over `0..items` and folds the results with
/// the associative operation `op` starting from `identity`.
///
/// The reduction order is deterministic (index order), so `op` need not be
/// commutative — but it must be associative for the answer to be meaningful.
pub fn par_reduce<R, F, Op>(items: usize, threads: usize, identity: R, f: F, op: Op) -> R
where
    R: Send + Clone,
    F: Fn(usize) -> R + Sync,
    Op: Fn(R, R) -> R,
{
    par_map(items, threads, f).into_iter().fold(identity, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let v = par_map(100, threads, |i| i * 2);
            assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty() {
        let v: Vec<u32> = par_map(0, 4, |_| 1);
        assert!(v.is_empty());
    }

    #[test]
    fn map_single_item() {
        assert_eq!(par_map(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn each_index_visited_exactly_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        par_for_each(257, 5, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn reduce_sums() {
        let total = par_reduce(1000, 4, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn reduce_non_commutative_op_still_ordered() {
        // String concatenation is associative but not commutative.
        let s = par_reduce(10, 4, String::new(), |i| i.to_string(), |a, b| a + &b);
        assert_eq!(s, "0123456789");
    }

    #[test]
    fn result_independent_of_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 7;
        let base = par_map(513, 1, f);
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(par_map(513, threads, f), base, "threads={threads}");
        }
    }

    #[test]
    fn threads_actually_used() {
        // With enough slow items, more than one OS thread should participate.
        let ids = Mutex::new(HashSet::new());
        par_for_each(64, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        // On a multicore machine this is ≥ 2 effectively always; tolerate 1
        // only if the host really has a single core.
        if available_threads() > 1 {
            assert!(ids.lock().unwrap().len() > 1, "work never parallelized");
        }
    }

    #[test]
    fn map_with_reuses_worker_state() {
        // Count how many times `init` ran: at most once per worker.
        let inits = AtomicU64::new(0);
        let v = par_map_with(
            100,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64 // scratch accumulator, never read into results
            },
            |scratch, i| {
                *scratch += 1;
                i * 3
            },
        );
        assert_eq!(v, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        let ran = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&ran), "init ran {ran} times");
    }

    #[test]
    fn map_with_matches_map_across_thread_counts() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 9;
        let base = par_map(257, 1, f);
        for threads in [1, 2, 3, 8] {
            let got = par_map_with(257, threads, || (), |(), i| f(i));
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn chunks_stop_at_wave_boundary() {
        // Pure f, control stops once 10+ results are in: consumed count is
        // the first wave boundary ≥ 10 regardless of threads.
        for threads in [1, 2, 4, 8] {
            let v = par_map_chunks_with(
                1000,
                threads,
                || (),
                |(), i| i,
                |sofar: &[usize]| if sofar.len() >= 10 { 0 } else { 4 },
            );
            assert_eq!(v, (0..12).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn chunks_respect_cap() {
        let v = par_map_chunks_with(7, 3, || (), |(), i| i * 2, |_: &[usize]| 100);
        assert_eq!(v, vec![0, 2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn chunks_zero_first_wave_runs_nothing() {
        let v: Vec<u32> = par_map_chunks_with(50, 4, || (), |(), _| 1, |_: &[u32]| 0);
        assert!(v.is_empty());
    }

    #[test]
    fn chunks_consumed_count_thread_independent() {
        // An adaptive-style rule whose verdict depends on result *values*:
        // stop when the running mean of a scrambled sequence settles.
        let f = |i: usize| ((i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 56) as f64;
        let run = |threads| {
            par_map_chunks_with(
                4096,
                threads,
                || (),
                |(), i| f(i),
                |sofar: &[f64]| {
                    if sofar.len() >= 32
                        && (sofar.iter().sum::<f64>() / sofar.len() as f64 - 128.0).abs() < 10.0
                    {
                        0
                    } else {
                        16
                    }
                },
            )
        };
        let base = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), base, "threads={threads}");
        }
    }

    #[test]
    fn chunks_workspaces_pooled_across_waves() {
        // Workspace inits are bounded by the thread count even across many
        // waves — the pool hands warm workspaces back out.
        let inits = AtomicU64::new(0);
        let v = par_map_chunks_with(
            64,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u8
            },
            |_, i| i,
            |sofar: &[usize]| if sofar.len() >= 64 { 0 } else { 8 },
        );
        assert_eq!(v.len(), 64);
        let ran = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&ran), "init ran {ran} times over 8 waves");
    }

    #[test]
    fn chunk_heuristic_bounds() {
        assert_eq!(default_chunk(0, 4), 1);
        assert_eq!(default_chunk(10, 4), 1);
        assert!(default_chunk(10_000, 4) <= 64);
        assert!(default_chunk(10_000, 4) >= 1);
    }
}
