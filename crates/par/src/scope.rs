//! Borrowing data-parallel loops with dynamic self-scheduling.
//!
//! `std::thread::scope` lets worker closures borrow the caller's data (the
//! graph, configuration, output buffers) without `Arc`. Work distribution is
//! dynamic: workers repeatedly claim the next chunk of indices from a shared
//! atomic cursor, so an unlucky thread that draws slow trials (cover times
//! are heavy-tailed!) does not become the critical path the way static
//! chunking would.
//!
//! All functions return results **ordered by item index**, never by
//! completion order, preserving determinism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use by default: the machine's available
/// parallelism, or 1 if unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Chunk size heuristic: aim for ~4 chunks per thread to amortize the atomic
/// claim while keeping the tail balanced, clamped to `[1, 64]`.
fn default_chunk(items: usize, threads: usize) -> usize {
    if items == 0 || threads == 0 {
        return 1;
    }
    (items / (threads * 4)).clamp(1, 64)
}

/// Maps `f` over `0..items` with up to `threads` worker threads, returning
/// `Vec<R>` in index order.
///
/// `f` must be `Sync` because several threads call it concurrently; per-item
/// state should be derived from the index (e.g. via
/// [`crate::seeds::SeedSequence`]).
///
/// ```
/// let squares = mrw_par::par_map(10, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
pub fn par_map<R, F>(items: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i| f(i))
}

/// [`par_map`] with a per-worker scratch workspace: each worker thread
/// calls `init` exactly once, then threads its workspace mutably through
/// every item it processes. This is how the walk estimators keep one
/// `EngineArena` (position buffers, visited bitsets, RNG blocks) per
/// worker and reuse it across the whole `(start × trial)` fan-out instead
/// of reallocating per trial.
///
/// Determinism contract: which worker (and therefore which workspace
/// instance) processes an item is scheduling-dependent, so `f`'s *result*
/// must be a pure function of the index alone — the workspace is scratch
/// memory, never a carrier of information between items. Results are
/// returned in index order, as with [`par_map`].
///
/// ```
/// let squares = mrw_par::par_map_with(
///     5,
///     2,
///     || Vec::<u64>::new(),
///     |scratch, i| {
///         scratch.clear(); // reused allocation, same answer every time
///         scratch.extend((0..=i as u64).map(|x| x * x));
///         *scratch.last().unwrap()
///     },
/// );
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_map_with<S, R, I, F>(items: usize, threads: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    if items == 0 {
        return Vec::new();
    }
    let threads = threads.min(items);
    if threads == 1 {
        let mut state = init();
        return (0..items).map(|i| f(&mut state, i)).collect();
    }
    let chunk = default_chunk(items, threads);
    let cursor = AtomicUsize::new(0);
    // Each worker accumulates (start_index, chunk_results) pairs locally and
    // publishes once at the end: no per-item synchronization.
    let collected: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                let mut state = init();
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items {
                        break;
                    }
                    let end = (start + chunk).min(items);
                    let mut out = Vec::with_capacity(end - start);
                    for i in start..end {
                        out.push(f(&mut state, i));
                    }
                    local.push((start, out));
                }
                if !local.is_empty() {
                    collected.lock().expect("poisoned").extend(local);
                }
            });
        }
    });

    let mut parts = collected.into_inner().expect("poisoned");
    parts.sort_by_key(|(start, _)| *start);
    let mut result = Vec::with_capacity(items);
    for (_, chunk_vals) in parts {
        result.extend(chunk_vals);
    }
    debug_assert_eq!(result.len(), items);
    result
}

/// Runs `f` for every index in `0..items` in parallel, discarding results.
pub fn par_for_each<F>(items: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_map(items, threads, f);
}

/// Parallel map-reduce: maps `f` over `0..items` and folds the results with
/// the associative operation `op` starting from `identity`.
///
/// The reduction order is deterministic (index order), so `op` need not be
/// commutative — but it must be associative for the answer to be meaningful.
pub fn par_reduce<R, F, Op>(items: usize, threads: usize, identity: R, f: F, op: Op) -> R
where
    R: Send + Clone,
    F: Fn(usize) -> R + Sync,
    Op: Fn(R, R) -> R,
{
    par_map(items, threads, f).into_iter().fold(identity, op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let v = par_map(100, threads, |i| i * 2);
            assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty() {
        let v: Vec<u32> = par_map(0, 4, |_| 1);
        assert!(v.is_empty());
    }

    #[test]
    fn map_single_item() {
        assert_eq!(par_map(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn each_index_visited_exactly_once() {
        let hits: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        par_for_each(257, 5, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn reduce_sums() {
        let total = par_reduce(1000, 4, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(total, 499_500);
    }

    #[test]
    fn reduce_non_commutative_op_still_ordered() {
        // String concatenation is associative but not commutative.
        let s = par_reduce(10, 4, String::new(), |i| i.to_string(), |a, b| a + &b);
        assert_eq!(s, "0123456789");
    }

    #[test]
    fn result_independent_of_thread_count() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 7;
        let base = par_map(513, 1, f);
        for threads in [2, 3, 4, 7, 16] {
            assert_eq!(par_map(513, threads, f), base, "threads={threads}");
        }
    }

    #[test]
    fn threads_actually_used() {
        // With enough slow items, more than one OS thread should participate.
        let ids = Mutex::new(HashSet::new());
        par_for_each(64, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        // On a multicore machine this is ≥ 2 effectively always; tolerate 1
        // only if the host really has a single core.
        if available_threads() > 1 {
            assert!(ids.lock().unwrap().len() > 1, "work never parallelized");
        }
    }

    #[test]
    fn map_with_reuses_worker_state() {
        // Count how many times `init` ran: at most once per worker.
        let inits = AtomicU64::new(0);
        let v = par_map_with(
            100,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64 // scratch accumulator, never read into results
            },
            |scratch, i| {
                *scratch += 1;
                i * 3
            },
        );
        assert_eq!(v, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        let ran = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&ran), "init ran {ran} times");
    }

    #[test]
    fn map_with_matches_map_across_thread_counts() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 9;
        let base = par_map(257, 1, f);
        for threads in [1, 2, 3, 8] {
            let got = par_map_with(257, threads, || (), |(), i| f(i));
            assert_eq!(got, base, "threads={threads}");
        }
    }

    #[test]
    fn chunk_heuristic_bounds() {
        assert_eq!(default_chunk(0, 4), 1);
        assert_eq!(default_chunk(10, 4), 1);
        assert!(default_chunk(10_000, 4) <= 64);
        assert!(default_chunk(10_000, 4) >= 1);
    }
}
