//! Property-based tests for the parallel substrate: parallel results must
//! equal serial results for arbitrary sizes, thread counts, and workloads.

use mrw_par::{par_map, par_reduce, SeedSequence, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn par_map_equals_serial(items in 0usize..500, threads in 1usize..12, salt in 0u64..1000) {
        let f = |i: usize| (i as u64).wrapping_mul(salt).rotate_left(13);
        let par = par_map(items, threads, f);
        let serial: Vec<u64> = (0..items).map(f).collect();
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn par_reduce_equals_fold(items in 0usize..300, threads in 1usize..8) {
        let total = par_reduce(items, threads, 0u64, |i| i as u64 + 1, |a, b| a + b);
        prop_assert_eq!(total, (items as u64) * (items as u64 + 1) / 2);
    }

    #[test]
    fn pool_executes_every_job(jobs in 0usize..300, threads in 1usize..6) {
        let pool = ThreadPool::new(threads);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..jobs {
            let c = Arc::clone(&counter);
            pool.execute(move || { c.fetch_add(1, Ordering::Relaxed); });
        }
        pool.join();
        prop_assert_eq!(counter.load(Ordering::Relaxed), jobs as u64);
    }

    #[test]
    fn seed_streams_are_pure_functions(master in any::<u64>(), idx in any::<u64>()) {
        let a = SeedSequence::new(master).seed_for(idx);
        let b = SeedSequence::new(master).seed_for(idx);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn seed_streams_distinct_across_children(master in any::<u64>(), l1 in 0u64..64, l2 in 0u64..64) {
        prop_assume!(l1 != l2);
        let root = SeedSequence::new(master);
        // Children with different labels should disagree on (essentially)
        // every stream index.
        let collisions = (0..32)
            .filter(|&i| root.child(l1).seed_for(i) == root.child(l2).seed_for(i))
            .count();
        prop_assert_eq!(collisions, 0);
    }
}
