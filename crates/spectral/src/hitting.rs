//! Exact hitting times `h(u,v)`.
//!
//! Two independent methods, cross-checked in tests:
//!
//! 1. **Fundamental matrix** (all pairs, one `O(n³)` inversion):
//!    `Z = (I − P + 𝟙πᵀ)⁻¹`, then `h(u,v) = (Z_vv − Z_uv)/π(v)`
//!    (Grinstead & Snell, *Introduction to Probability*, Thm 11.16; valid
//!    for any irreducible chain, periodic ones included — the even cycle
//!    and the hypercube are handled correctly).
//! 2. **Single-target solve**: for a fixed target `v`, the unknowns
//!    `h(u,v)`, `u ≠ v`, satisfy `h(u) = 1 + Σ_{w∈N(u)} h(w)/δ(u)` with
//!    `h(v) = 0` — an `(n−1)×(n−1)` linear system.
//!
//! `h_max = max_{u≠v} h(u,v)` and `h_min` feed Matthews' bound (Theorem 1),
//! the Baby Matthews bound (Theorem 13), and the gap `g(n) = C/h_max` of
//! Theorem 5.

use mrw_graph::{algo, Graph};

use crate::dense::DenseMatrix;
use crate::stationary::stationary_distribution;
use crate::transition::TransitionOp;

/// All-pairs hitting times for a graph.
#[derive(Debug, Clone)]
pub struct HittingTimes {
    n: usize,
    /// Row-major `h[u][v]` = expected steps from `u` to first visit of `v`.
    h: Vec<f64>,
}

impl HittingTimes {
    /// `h(u,v)`; zero when `u == v` (by the first-visit convention
    /// `h(v,v) = 0`; the *return* time would be `1/π(v)`).
    pub fn get(&self, u: u32, v: u32) -> f64 {
        self.h[u as usize * self.n + v as usize]
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum hitting time over ordered pairs `u ≠ v`.
    pub fn hmax(&self) -> f64 {
        let mut best = 0.0f64;
        for u in 0..self.n {
            for v in 0..self.n {
                if u != v {
                    best = best.max(self.h[u * self.n + v]);
                }
            }
        }
        best
    }

    /// Minimum hitting time over ordered pairs `u ≠ v`.
    pub fn hmin(&self) -> f64 {
        let mut best = f64::INFINITY;
        for u in 0..self.n {
            for v in 0..self.n {
                if u != v {
                    best = best.min(self.h[u * self.n + v]);
                }
            }
        }
        best
    }

    /// `max_v h(u, v)` — the worst target from a fixed start.
    pub fn hmax_from(&self, u: u32) -> f64 {
        (0..self.n)
            .filter(|&v| v != u as usize)
            .map(|v| self.h[u as usize * self.n + v])
            .fold(0.0, f64::max)
    }

    /// The ordered pair attaining `hmax`.
    pub fn argmax(&self) -> (u32, u32) {
        let mut best = (0u32, 0u32);
        let mut best_val = -1.0;
        for u in 0..self.n {
            for v in 0..self.n {
                if u != v && self.h[u * self.n + v] > best_val {
                    best_val = self.h[u * self.n + v];
                    best = (u as u32, v as u32);
                }
            }
        }
        best
    }
}

/// Computes all-pairs hitting times via the fundamental matrix.
///
/// `O(n³)` time, `O(n²)` memory — intended for `n` up to ~1500.
///
/// # Panics
/// If the graph is disconnected (hitting times would be infinite) or
/// edgeless.
pub fn hitting_times_all(g: &Graph) -> HittingTimes {
    assert!(
        algo::is_connected(g),
        "hitting times are infinite on a disconnected graph"
    );
    let n = g.n();
    assert!(n >= 1);
    let pi = stationary_distribution(g);
    let p = TransitionOp::new(g).to_dense();
    // M = I − P + 𝟙πᵀ
    let m = DenseMatrix::from_fn(n, n, |r, c| {
        let i = if r == c { 1.0 } else { 0.0 };
        i - p[(r, c)] + pi[c]
    });
    let z = m
        .inverse()
        .expect("I − P + 1πᵀ must be invertible for an irreducible chain");
    let mut h = vec![0.0; n * n];
    for u in 0..n {
        for v in 0..n {
            if u != v {
                h[u * n + v] = (z[(v, v)] - z[(u, v)]) / pi[v];
            }
        }
    }
    HittingTimes { n, h }
}

/// Hitting times to the single target `v` by a direct linear solve:
/// returns `h` with `h[u] = h(u, v)` and `h[v] = 0`.
///
/// # Panics
/// If the graph is disconnected.
pub fn hitting_times_to(g: &Graph, v: u32) -> Vec<f64> {
    assert!(
        algo::is_connected(g),
        "hitting times are infinite on a disconnected graph"
    );
    let n = g.n();
    assert!((v as usize) < n, "target {v} out of range");
    if n == 1 {
        return vec![0.0];
    }
    // Index mapping: vertices != v to 0..n-1 (shift those above v down).
    let idx = |u: usize| -> usize {
        if u < v as usize {
            u
        } else {
            u - 1
        }
    };
    let a = DenseMatrix::from_fn(n - 1, n - 1, |r, c| {
        // Row r corresponds to vertex ur below.
        let ur = if r < v as usize { r } else { r + 1 };
        let uc = if c < v as usize { c } else { c + 1 };
        let i = if r == c { 1.0 } else { 0.0 };
        let p = if g.has_edge(ur as u32, uc as u32) {
            1.0 / g.degree(ur as u32) as f64
        } else {
            0.0
        };
        i - p
    });
    let b = vec![1.0; n - 1];
    let x = a
        .solve(&b)
        .expect("hitting-time system is nonsingular on a connected graph");
    let mut h = vec![0.0; n];
    for u in 0..n {
        if u != v as usize {
            h[u] = x[idx(u)];
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;

    const TOL: f64 = 1e-7;

    #[test]
    fn complete_graph_closed_form() {
        // K_n: h(u,v) = n − 1 for all u ≠ v.
        let g = generators::complete(8);
        let ht = hitting_times_all(&g);
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v {
                    assert!(
                        (ht.get(u, v) - 7.0).abs() < TOL,
                        "h({u},{v})={}",
                        ht.get(u, v)
                    );
                }
            }
        }
        assert!((ht.hmax() - 7.0).abs() < TOL);
        assert!((ht.hmin() - 7.0).abs() < TOL);
    }

    #[test]
    fn cycle_closed_form() {
        // L_n: h(0, j) = j(n − j).
        let n = 12;
        let g = generators::cycle(n);
        let ht = hitting_times_all(&g);
        for j in 1..n as u32 {
            let expect = (j as f64) * (n as f64 - j as f64);
            assert!(
                (ht.get(0, j) - expect).abs() < TOL,
                "h(0,{j}) = {} ≠ {expect}",
                ht.get(0, j)
            );
        }
        // Odd cycle is aperiodic; even cycle periodic — try both.
        let g13 = generators::cycle(13);
        let ht13 = hitting_times_all(&g13);
        assert!((ht13.get(0, 6) - (6.0 * 7.0)).abs() < TOL);
    }

    #[test]
    fn path_closed_form() {
        // P_n: for i < j, h(i, j) = j² − i².
        let g = generators::path(9);
        let ht = hitting_times_all(&g);
        for i in 0..9u32 {
            for j in (i + 1)..9u32 {
                let expect = (j * j - i * i) as f64;
                assert!(
                    (ht.get(i, j) - expect).abs() < TOL,
                    "h({i},{j}) = {} ≠ {expect}",
                    ht.get(i, j)
                );
            }
        }
        // h_max on the path: end-to-end = (n−1)²; either orientation may win
        // the floating-point tie.
        assert!((ht.hmax() - 64.0).abs() < TOL);
        let am = ht.argmax();
        assert!(am == (0, 8) || am == (8, 0), "argmax = {am:?}");
    }

    #[test]
    fn star_closed_form() {
        // Star on n vertices: h(leaf, hub)=1, h(hub, leaf)=2n−3,
        // h(leaf, leaf')=2n−2.
        let n = 7;
        let g = generators::star(n);
        let ht = hitting_times_all(&g);
        assert!((ht.get(3, 0) - 1.0).abs() < TOL);
        assert!((ht.get(0, 3) - (2 * n - 3) as f64).abs() < TOL);
        assert!((ht.get(1, 2) - (2 * n - 2) as f64).abs() < TOL);
    }

    #[test]
    fn hypercube_hitting_time_is_theta_n() {
        // Q_d: h(u, antipode) ~ n (Table 1: hitting time Θ(n)).
        let g = generators::hypercube(6); // n = 64
        let ht = hitting_times_all(&g);
        let h = ht.get(0, 63);
        assert!(h > 50.0 && h < 200.0, "h(0,antipode) = {h}");
    }

    #[test]
    fn two_methods_agree() {
        for g in [
            generators::barbell(9),
            generators::lollipop(8),
            generators::cycle(10),
            generators::balanced_tree(2, 3),
        ] {
            let all = hitting_times_all(&g);
            for v in [0u32, (g.n() / 2) as u32, (g.n() - 1) as u32] {
                let direct = hitting_times_to(&g, v);
                for u in 0..g.n() as u32 {
                    assert!(
                        (all.get(u, v) - direct[u as usize]).abs() < 1e-6,
                        "{}: h({u},{v}) fundamental={} direct={}",
                        g.name(),
                        all.get(u, v),
                        direct[u as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn hmax_symmetric_bounds() {
        let g = generators::cycle(16);
        let ht = hitting_times_all(&g);
        // max over pairs at distance n/2: h = (n/2)(n/2) = 64
        assert!((ht.hmax() - 64.0).abs() < TOL);
        // hmin = hitting adjacent vertex = n − 1 = 15 on a cycle.
        assert!((ht.hmin() - 15.0).abs() < TOL);
    }

    #[test]
    fn hmax_from_center_smaller_than_global() {
        let g = generators::path(11);
        let ht = hitting_times_all(&g);
        assert!(ht.hmax_from(5) < ht.hmax());
        // From center 5 to either end: 10² − 5² = 75.
        assert!((ht.hmax_from(5) - 75.0).abs() < TOL);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_rejected() {
        let mut b = mrw_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        hitting_times_all(&b.build("frag"));
    }

    #[test]
    fn barbell_escape_is_quadratic() {
        // From inside a bell to the other bell ~ Θ(n²): check growth.
        let h_small = {
            let g = generators::barbell(17);
            let ht = hitting_times_all(&g);
            ht.get(1, 9) // bell A interior -> bell B attachment
        };
        let h_large = {
            let g = generators::barbell(33);
            let ht = hitting_times_all(&g);
            ht.get(1, 17)
        };
        // Quadratic scaling: doubling n should ≈ quadruple h.
        let ratio = h_large / h_small;
        assert!(ratio > 2.8 && ratio < 5.5, "ratio {ratio}");
    }
}
