//! Dense row-major matrices with partial-pivot LU decomposition.
//!
//! Only what the hitting-time computations need: construct, multiply by a
//! vector, LU-factor, solve, invert. Sizes are a few hundred to ~2000, so a
//! straightforward cache-friendly triple loop is plenty.

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows.checked_mul(cols).expect("matrix too large")],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Matrix–matrix product `A·B`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// LU decomposition with partial pivoting.
    ///
    /// Returns `None` if the matrix is singular (a pivot smaller than
    /// `1e-12` in magnitude).
    pub fn lu(&self) -> Option<Lu> {
        assert_eq!(self.rows, self.cols, "LU needs a square matrix");
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Pivot selection.
            let mut best = col;
            let mut best_abs = lu[col * n + col].abs();
            for r in (col + 1)..n {
                let a = lu[r * n + col].abs();
                if a > best_abs {
                    best = r;
                    best_abs = a;
                }
            }
            if best_abs < 1e-12 {
                return None;
            }
            if best != col {
                for c in 0..n {
                    lu.swap(col * n + c, best * n + c);
                }
                perm.swap(col, best);
            }
            let pivot = lu[col * n + col];
            for r in (col + 1)..n {
                let factor = lu[r * n + col] / pivot;
                lu[r * n + col] = factor;
                for c in (col + 1)..n {
                    lu[r * n + c] -= factor * lu[col * n + c];
                }
            }
        }
        Some(Lu { n, lu, perm })
    }

    /// Solves `A·x = b` via LU; `None` if singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        Some(self.lu()?.solve(b))
    }

    /// Inverse via LU on the identity columns; `None` if singular.
    pub fn inverse(&self) -> Option<DenseMatrix> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for col in 0..n {
            e[col] = 1.0;
            let x = lu.solve(&e);
            for r in 0..n {
                inv[(r, col)] = x[r];
            }
            e[col] = 0.0;
        }
        Some(inv)
    }

    /// Max-abs elementwise difference to another matrix.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// An LU factorization `P·A = L·U` ready for repeated solves.
pub struct Lu {
    n: usize,
    /// Combined L (strict lower, unit diagonal implicit) and U (upper).
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl Lu {
    /// Solves `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve dimension mismatch");
        let n = self.n;
        // Apply permutation, forward-substitute L.
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for r in 1..n {
            let dot: f64 = self.lu[r * n..r * n + r]
                .iter()
                .zip(&y[..r])
                .map(|(l, yv)| l * yv)
                .sum();
            y[r] -= dot;
        }
        // Back-substitute U.
        for r in (0..n).rev() {
            let dot: f64 = self.lu[r * n + r + 1..r * n + n]
                .iter()
                .zip(&y[r + 1..])
                .map(|(u, yv)| u * yv)
                .sum();
            y[r] = (y[r] - dot) / self.lu[r * n + r];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let i = DenseMatrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.solve(&b).unwrap(), b);
    }

    #[test]
    fn known_2x2() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        let x = a.solve(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3, 2]
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = DenseMatrix::from_fn(3, 3, |r, c| (r + c) as f64); // rank 2
        assert!(a.lu().is_none());
        assert!(a.solve(&[1.0, 2.0, 3.0]).is_none());
        assert!(a.inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        // A pseudo-random well-conditioned matrix (diagonally dominant).
        let n = 12;
        let a = DenseMatrix::from_fn(n, n, |r, c| {
            if r == c {
                10.0 + r as f64
            } else {
                ((r * 31 + c * 17) % 7) as f64 / 7.0
            }
        });
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&DenseMatrix::identity(n)) < 1e-9);
    }

    #[test]
    fn solve_matches_matvec() {
        let n = 20;
        let a = DenseMatrix::from_fn(n, n, |r, c| {
            if r == c {
                5.0
            } else {
                (((r * 13 + c * 7) % 11) as f64 - 5.0) / 11.0
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            assert!((xs - xt).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_identity() {
        let a = DenseMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64);
        let i = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn repeated_solves_from_one_factorization() {
        let a = DenseMatrix::from_fn(5, 5, |r, c| if r == c { 4.0 } else { 1.0 });
        let lu = a.lu().unwrap();
        for k in 0..3 {
            let b: Vec<f64> = (0..5).map(|i| (i + k) as f64).collect();
            let x = lu.solve(&b);
            let back = a.matvec(&x);
            for (bb, bo) in back.iter().zip(&b) {
                assert!((bb - bo).abs() < 1e-10);
            }
        }
    }
}
