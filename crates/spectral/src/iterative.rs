//! Sparse iterative solvers: Gauss–Seidel hitting times and conjugate
//! gradients on the graph Laplacian.
//!
//! The exact [`hitting`](crate::hitting) pipeline inverts a dense `n×n`
//! matrix — `O(n³)` time and `O(n²)` memory — which caps it near
//! `n ≈ 2000`. But the paper's Table 1 quantities only ever need hitting
//! times *to one target* (`h_max` searches pairs) and effective
//! resistances *of single pairs* (the commute identity of \[15\]). Both are
//! single linear systems with an `O(m)` sparse operator, so iterative
//! methods reach `n` in the hundreds of thousands:
//!
//! * [`hitting_times_to_gs`] — Gauss–Seidel on
//!   `h(v) = 1 + (1/δ(v))·Σ_{u∼v} h(u)`, `h(target) = 0`. The system
//!   matrix `I − Q` is a weakly diagonally dominant M-matrix, for which
//!   Gauss–Seidel converges monotonically from below when started at 0.
//! * [`LaplacianOp`] + [`conjugate_gradient`] — matrix-free CG, used by
//!   [`effective_resistance_cg`] to solve `L x = e_u − e_v` on the
//!   subspace orthogonal to the all-ones kernel.
//!
//! Everything is cross-checked against the LU route in tests; the bench
//! `spectral` compares their scaling.

use mrw_graph::Graph;

/// Convergence report for an iterative solve.
#[derive(Debug, Clone, Copy)]
pub struct IterativeSolve {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual measure (solver-specific; see each solver's doc).
    pub residual: f64,
}

/// Exact-in-the-limit hitting times `h(v, target)` for **all** `v` by
/// Gauss–Seidel, sweeping until the largest per-vertex update falls below
/// `tol`. Returns the solution plus a convergence report, or `None` if
/// `max_sweeps` was exhausted first.
///
/// `h(target) = 0` by definition. The iteration starts from all-zeros and
/// increases monotonically toward the true hitting times.
///
/// # Panics
/// If `target` is out of range or the graph is empty.
pub fn hitting_times_to_gs(
    g: &Graph,
    target: u32,
    tol: f64,
    max_sweeps: usize,
) -> Option<(Vec<f64>, IterativeSolve)> {
    let n = g.n();
    assert!(n > 0, "empty graph");
    assert!((target as usize) < n, "target {target} out of range");
    let mut h = vec![0.0f64; n];
    for sweep in 1..=max_sweeps {
        let mut delta = 0.0f64;
        for v in 0..n as u32 {
            if v == target {
                continue;
            }
            let d = g.degree(v);
            debug_assert!(d > 0, "isolated vertex {v}");
            let mut acc = 0.0;
            for &u in g.neighbors(v) {
                acc += h[u as usize];
            }
            let new = 1.0 + acc / d as f64;
            delta = delta.max((new - h[v as usize]).abs());
            h[v as usize] = new;
        }
        if delta < tol {
            return Some((
                h,
                IterativeSolve {
                    iterations: sweep,
                    residual: delta,
                },
            ));
        }
    }
    None
}

/// The graph Laplacian `L = D − A` as a matrix-free operator.
///
/// Self-loops cancel out of `L` (they add to both `D` and the diagonal of
/// `A`), matching the electrical-network view where a self-loop carries no
/// current.
#[derive(Debug, Clone, Copy)]
pub struct LaplacianOp<'g> {
    g: &'g Graph,
}

impl<'g> LaplacianOp<'g> {
    /// Wraps a graph.
    pub fn new(g: &'g Graph) -> Self {
        Self { g }
    }

    /// `out = L·x` in `O(m)`.
    ///
    /// # Panics
    /// If `x` or `out` has the wrong length.
    pub fn apply(&self, x: &[f64], out: &mut [f64]) {
        let n = self.g.n();
        assert_eq!(x.len(), n, "input length");
        assert_eq!(out.len(), n, "output length");
        for v in 0..n as u32 {
            let mut acc = 0.0;
            let mut deg_no_loop = 0usize;
            for &u in self.g.neighbors(v) {
                if u == v {
                    continue;
                }
                acc += x[u as usize];
                deg_no_loop += 1;
            }
            out[v as usize] = deg_no_loop as f64 * x[v as usize] - acc;
        }
    }

    /// Quadratic form `xᵀLx = Σ_{(u,v)∈E} (x_u − x_v)²` — the electrical
    /// power dissipated by potentials `x`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        self.g
            .edges()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| {
                let d = x[u as usize] - x[v as usize];
                d * d
            })
            .sum()
    }
}

/// Conjugate gradients for a symmetric positive-semidefinite operator
/// given as a closure. Iterates until `‖r‖₂ ≤ tol·‖b‖₂` or `max_iters`.
///
/// Returns the solution and a report (`residual` is the final relative
/// residual), or `None` on non-convergence. When the operator has a
/// kernel (the Laplacian's all-ones vector), `b` must be orthogonal to it
/// and the returned solution is the minimum-norm one *up to* a kernel
/// component determined by the start; callers ground it as needed.
pub fn conjugate_gradient(
    apply: impl Fn(&[f64], &mut [f64]),
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Option<(Vec<f64>, IterativeSolve)> {
    let n = b.len();
    let bnorm = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if bnorm == 0.0 {
        return Some((
            vec![0.0; n],
            IterativeSolve {
                iterations: 0,
                residual: 0.0,
            },
        ));
    }
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0f64; n];
    let mut rr: f64 = r.iter().map(|x| x * x).sum();
    for iter in 1..=max_iters {
        apply(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if pap <= 0.0 {
            // Hit the kernel (numerically); the current iterate is as good
            // as CG can do.
            return Some((
                x,
                IterativeSolve {
                    iterations: iter,
                    residual: rr.sqrt() / bnorm,
                },
            ));
        }
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_new: f64 = r.iter().map(|x| x * x).sum();
        if rr_new.sqrt() <= tol * bnorm {
            return Some((
                x,
                IterativeSolve {
                    iterations: iter,
                    residual: rr_new.sqrt() / bnorm,
                },
            ));
        }
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
    }
    None
}

/// Effective resistance `R_eff(u, v)` by a single Laplacian CG solve:
/// `L x = e_u − e_v`, `R = x_u − x_v`. Scales to graphs far beyond the
/// dense [`hitting_times_all`](crate::hitting::hitting_times_all) route.
///
/// Returns `None` if CG fails to converge within `max_iters`.
///
/// # Panics
/// If `u == v` or either vertex is out of range.
pub fn effective_resistance_cg(
    g: &Graph,
    u: u32,
    v: u32,
    tol: f64,
    max_iters: usize,
) -> Option<f64> {
    let n = g.n();
    assert!((u as usize) < n && (v as usize) < n, "vertex out of range");
    assert_ne!(u, v, "resistance of a vertex to itself is 0 by convention");
    let mut b = vec![0.0f64; n];
    b[u as usize] = 1.0;
    b[v as usize] = -1.0;
    let op = LaplacianOp::new(g);
    let (x, _) = conjugate_gradient(|p, out| op.apply(p, out), &b, tol, max_iters)?;
    Some(x[u as usize] - x[v as usize])
}

/// Commute time `h(u,v) + h(v,u) = 2m·R_eff(u,v)` via the CG resistance —
/// the sparse counterpart of [`commute_time`](crate::resistance::commute_time).
pub fn commute_time_cg(g: &Graph, u: u32, v: u32, tol: f64, max_iters: usize) -> Option<f64> {
    // Self-loops count in the walk's edge total 2m = Σδ(v) but carry no
    // current, so use the degree sum rather than 2·(edge count).
    let two_m = g.degree_sum() as f64;
    effective_resistance_cg(g, u, v, tol, max_iters).map(|r| two_m * r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting::{hitting_times_all, hitting_times_to};
    use mrw_graph::generators;

    const TOL: f64 = 1e-10;

    #[test]
    fn gs_matches_lu_on_cycle() {
        let g = generators::cycle(12);
        let (gs, report) = hitting_times_to_gs(&g, 0, TOL, 100_000).expect("converges");
        let lu = hitting_times_to(&g, 0);
        for v in 0..12 {
            assert!(
                (gs[v] - lu[v]).abs() < 1e-6,
                "v={v}: GS {} vs LU {}",
                gs[v],
                lu[v]
            );
        }
        assert!(report.iterations > 1);
    }

    #[test]
    fn gs_matches_lu_on_irregular_families() {
        for g in [
            generators::barbell(11),
            generators::lollipop(10),
            generators::star(9),
            generators::balanced_tree(3, 2),
        ] {
            let (gs, _) = hitting_times_to_gs(&g, 2, TOL, 200_000).expect("converges");
            let lu = hitting_times_to(&g, 2);
            for v in 0..g.n() {
                assert!(
                    (gs[v] - lu[v]).abs() < 1e-5,
                    "{} v={v}: {} vs {}",
                    g.name(),
                    gs[v],
                    lu[v]
                );
            }
        }
    }

    #[test]
    fn gs_target_entry_is_zero_and_others_positive() {
        let g = generators::torus_2d(5);
        let (gs, _) = hitting_times_to_gs(&g, 7, TOL, 100_000).expect("converges");
        assert_eq!(gs[7], 0.0);
        for (v, &h) in gs.iter().enumerate() {
            if v != 7 {
                assert!(h >= 1.0, "h({v}, 7) = {h} < 1");
            }
        }
    }

    #[test]
    fn gs_reports_nonconvergence_when_starved() {
        let g = generators::cycle(64);
        assert!(hitting_times_to_gs(&g, 0, 1e-12, 3).is_none());
    }

    #[test]
    fn laplacian_annihilates_constants() {
        let g = generators::barbell(13);
        let op = LaplacianOp::new(&g);
        let x = vec![3.25; g.n()];
        let mut out = vec![f64::NAN; g.n()];
        op.apply(&x, &mut out);
        for &y in &out {
            assert!(y.abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_quadratic_form_matches_apply() {
        let g = generators::torus_2d(4);
        let op = LaplacianOp::new(&g);
        let x: Vec<f64> = (0..g.n()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut lx = vec![0.0; g.n()];
        op.apply(&x, &mut lx);
        let xtlx: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        assert!((xtlx - op.quadratic_form(&x)).abs() < 1e-9);
    }

    #[test]
    fn cg_solves_definite_diagonal_system() {
        // 4x + 0 = b — CG on a diagonal SPD operator converges in n steps.
        let b = vec![4.0, 8.0, 12.0];
        let (x, report) = conjugate_gradient(
            |p, out| out.iter_mut().zip(p).for_each(|(o, &v)| *o = 4.0 * v),
            &b,
            1e-12,
            10,
        )
        .expect("converges");
        for (i, &xi) in x.iter().enumerate() {
            assert!((xi - b[i] / 4.0).abs() < 1e-10);
        }
        assert!(report.iterations <= 3);
    }

    #[test]
    fn cg_resistance_path_is_distance() {
        let g = generators::path(10);
        for (u, v, expect) in [(0u32, 9u32, 9.0), (2, 5, 3.0), (0, 1, 1.0)] {
            let r = effective_resistance_cg(&g, u, v, 1e-12, 10_000).expect("cg");
            assert!((r - expect).abs() < 1e-8, "R({u},{v}) = {r}");
        }
    }

    #[test]
    fn cg_resistance_cycle_parallel_paths() {
        let n = 16usize;
        let g = generators::cycle(n);
        for d in 1..n as u32 {
            let r = effective_resistance_cg(&g, 0, d, 1e-12, 10_000).expect("cg");
            let expect = d as f64 * (n as f64 - d as f64) / n as f64;
            assert!((r - expect).abs() < 1e-8, "R(0,{d}) = {r} vs {expect}");
        }
    }

    #[test]
    fn cg_resistance_matches_lu_route_on_barbell() {
        let g = generators::barbell(13);
        let ht = hitting_times_all(&g);
        for (u, v) in [(0u32, 12u32), (1, 6), (6, 12)] {
            let lu = crate::resistance::effective_resistance(&g, &ht, u, v);
            let cg = effective_resistance_cg(&g, u, v, 1e-12, 50_000).expect("cg");
            assert!((lu - cg).abs() < 1e-6, "({u},{v}): LU {lu} vs CG {cg}");
        }
    }

    #[test]
    fn commute_identity_cg_vs_exact_hitting() {
        // h(u,v) + h(v,u) = 2m·R_eff — the CRRS identity, closed by CG.
        let g = generators::lollipop(12);
        let ht = hitting_times_all(&g);
        for (u, v) in [(0u32, 11u32), (3, 8)] {
            let exact = ht.get(u, v) + ht.get(v, u);
            let cg = commute_time_cg(&g, u, v, 1e-12, 50_000).expect("cg");
            assert!(
                (exact - cg).abs() < 1e-5 * exact.max(1.0),
                "({u},{v}): {exact} vs {cg}"
            );
        }
    }

    #[test]
    fn cg_handles_large_sparse_graph() {
        // n = 10_000 torus: far beyond the dense-LU regime; CG finishes and
        // the answer is positive, finite, and symmetric.
        let g = generators::torus_2d(100);
        let a = effective_resistance_cg(&g, 0, 5050, 1e-10, 100_000).expect("cg large");
        let b = effective_resistance_cg(&g, 5050, 0, 1e-10, 100_000).expect("cg large");
        assert!(a.is_finite() && a > 0.0);
        assert!((a - b).abs() < 1e-6, "asymmetry {a} vs {b}");
    }

    #[test]
    fn self_loops_do_not_change_resistance_but_scale_commute() {
        let plain = generators::complete(8);
        let loops = generators::complete_with_loops(8);
        let rp = effective_resistance_cg(&plain, 0, 3, 1e-12, 10_000).expect("cg");
        let rl = effective_resistance_cg(&loops, 0, 3, 1e-12, 10_000).expect("cg");
        assert!(
            (rp - rl).abs() < 1e-9,
            "loop changed resistance: {rp} vs {rl}"
        );
        // Commute times differ exactly by the degree-sum ratio.
        let cp = commute_time_cg(&plain, 0, 3, 1e-12, 10_000).unwrap();
        let cl = commute_time_cg(&loops, 0, 3, 1e-12, 10_000).unwrap();
        let ratio = loops.degree_sum() as f64 / plain.degree_sum() as f64;
        assert!((cl / cp - ratio).abs() < 1e-9);
    }
}
