//! Full symmetric eigendecomposition by cyclic Jacobi rotations.
//!
//! The expander analysis of Section 4.1 lives and dies by the spectrum:
//! an `(n,d,λ)`-graph is a d-regular graph whose nontrivial adjacency
//! eigenvalues all have modulus at most `λ`, and Lemma 19 / Corollary 20
//! turn the ratio `λ/d` into a hitting-probability bound.
//! [`power`](crate::power) already estimates the single dominant
//! nontrivial eigenvalue; this module computes the *entire* spectrum of
//! the walk operator, which gives
//!
//! * an independent cross-check of the power-iteration certificate,
//! * the relaxation time `t_rel = 1/(1 − λ*)` and the classical
//!   reversible-chain sandwich on the mixing time
//!   (`(t_rel − 1)·ln(1/2e) ≤ t_m ≤ t_rel·ln(en/π_min)` — Levin–Peres
//!   Thms 12.4/12.5), which we compare against the paper's exact
//!   TV-evolution `t_m` in the Theorem 9 experiment, and
//! * closed-form spectra for the paper's families (cycle, complete,
//!   hypercube, torus) used as ground truth in tests.
//!
//! The walk matrix `P = D⁻¹A` of an undirected graph is similar to the
//! symmetric normalized adjacency `N = D^{-1/2} A D^{-1/2}`
//! (`N = D^{1/2} P D^{-1/2}`), so its eigenvalues are real and we can run
//! Jacobi on `N` — no unsymmetric eigensolver needed.

use mrw_graph::Graph;

use crate::dense::DenseMatrix;

/// Eigendecomposition of a symmetric matrix: `values[i]` belongs to the
/// `i`-th column of `vectors`. Values are sorted descending.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, aligned with `values`.
    pub vectors: DenseMatrix,
}

/// Cyclic Jacobi eigensolver for a symmetric matrix.
///
/// Sweeps rotate away each off-diagonal entry in turn; off-diagonal mass
/// decreases quadratically once small, and 30 sweeps is far more than
/// needed for any matrix this project builds (a sweep count that low is a
/// hard failure, so we panic rather than return garbage).
///
/// # Panics
/// If `a` is not square, not symmetric (to `1e-9` relative), or fails to
/// converge.
pub fn jacobi_eigen(a: &DenseMatrix) -> SymmetricEigen {
    let n = a.rows();
    assert_eq!(n, a.cols(), "Jacobi needs a square matrix");
    let scale = (0..n)
        .flat_map(|i| (0..n).map(move |j| (i, j)))
        .map(|(i, j)| a[(i, j)].abs())
        .fold(0.0f64, f64::max)
        .max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a[(i, j)] - a[(j, i)]).abs() <= 1e-9 * scale,
                "Jacobi needs a symmetric matrix; a[{i},{j}] = {}, a[{j},{i}] = {}",
                a[(i, j)],
                a[(j, i)]
            );
        }
    }

    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    const MAX_SWEEPS: usize = 50;
    const TOL: f64 = 1e-12;
    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| m[(i, j)] * m[(i, j)])
            .sum();
        if off.sqrt() <= TOL * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= TOL * scale * 1e-3 {
                    continue;
                }
                // Classic two-sided rotation eliminating m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for i in 0..n {
                    let mip = m[(i, p)];
                    let miq = m[(i, q)];
                    m[(i, p)] = c * mip - s * miq;
                    m[(i, q)] = s * mip + c * miq;
                }
                for j in 0..n {
                    let mpj = m[(p, j)];
                    let mqj = m[(q, j)];
                    m[(p, j)] = c * mpj - s * mqj;
                    m[(q, j)] = s * mpj + c * mqj;
                }
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = c * vip - s * viq;
                    v[(i, q)] = s * vip + c * viq;
                }
            }
        }
    }
    let final_off: f64 = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| m[(i, j)] * m[(i, j)])
        .sum::<f64>()
        .sqrt();
    assert!(
        final_off <= 1e-8 * scale,
        "Jacobi failed to converge: residual off-diagonal norm {final_off}"
    );

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));
    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = DenseMatrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    SymmetricEigen { values, vectors }
}

/// Eigenvalues of the walk matrix `P = D⁻¹A`, descending (`≈ 1` first).
///
/// Computed on the similar symmetric matrix `D^{-1/2} A D^{-1/2}`, so the
/// graph may be irregular. Self-loops contribute to both `A` and `D`
/// exactly as the walk engine treats them.
///
/// ```
/// use mrw_graph::generators;
/// use mrw_spectral::walk_spectrum;
///
/// // K_4: eigenvalues 1 and −1/3 (three times).
/// let s = walk_spectrum(&generators::complete(4));
/// assert!((s[0] - 1.0).abs() < 1e-9);
/// assert!((s[1] + 1.0 / 3.0).abs() < 1e-9);
/// ```
///
/// # Panics
/// If `g` has an isolated vertex (the walk matrix is undefined there).
pub fn walk_spectrum(g: &Graph) -> Vec<f64> {
    let n = g.n();
    assert!(n > 0, "spectrum of the empty graph");
    let inv_sqrt_deg: Vec<f64> = (0..n as u32)
        .map(|v| {
            let d = g.degree(v);
            assert!(d > 0, "vertex {v} is isolated; walk matrix undefined");
            1.0 / (d as f64).sqrt()
        })
        .collect();
    let mut a = DenseMatrix::zeros(n, n);
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            a[(v as usize, u as usize)] += inv_sqrt_deg[v as usize] * inv_sqrt_deg[u as usize];
        }
    }
    jacobi_eigen(&a).values
}

/// Spectral summary of the walk operator of a graph.
#[derive(Debug, Clone, Copy)]
pub struct WalkSpectrumSummary {
    /// Second-largest eigenvalue `λ₂` of `P`.
    pub lambda2: f64,
    /// Smallest eigenvalue `λ_n` of `P` (≥ −1; = −1 iff bipartite).
    pub lambda_min: f64,
    /// `λ* = max(λ₂, |λ_n|)` — the convergence rate of the chain.
    pub lambda_star: f64,
    /// Spectral gap `1 − λ₂`.
    pub gap: f64,
    /// Absolute spectral gap `1 − λ*`.
    pub abs_gap: f64,
    /// Relaxation time `t_rel = 1/(1 − λ*)` (`∞` for bipartite graphs,
    /// where the non-lazy walk never mixes).
    pub relaxation_time: f64,
}

/// Summarizes a walk spectrum (as returned by [`walk_spectrum`]).
///
/// # Panics
/// If the spectrum has fewer than 2 eigenvalues.
pub fn summarize_spectrum(spectrum: &[f64]) -> WalkSpectrumSummary {
    assert!(spectrum.len() >= 2, "need at least two eigenvalues");
    let lambda2 = spectrum[1];
    let lambda_min = *spectrum.last().expect("nonempty");
    let lambda_star = lambda2.max(lambda_min.abs());
    let abs_gap = 1.0 - lambda_star;
    WalkSpectrumSummary {
        lambda2,
        lambda_min,
        lambda_star,
        gap: 1.0 - lambda2,
        abs_gap,
        relaxation_time: if abs_gap > 0.0 {
            1.0 / abs_gap
        } else {
            f64::INFINITY
        },
    }
}

/// The reversible-chain mixing-time sandwich at the paper's threshold
/// `ε = 1/e`: returns `(lower, upper)` with
/// `lower = (t_rel − 1)·ln(1/(2ε))` and
/// `upper = t_rel · ln(1/(ε·π_min))`
/// (Levin–Peres–Wilmer, *Markov Chains and Mixing Times*, Thms 12.5 and
/// 12.4). The paper's `t_m` (total-variation at `1/e`, §2) must land in
/// this bracket for aperiodic chains; for the lazy chain substitute the
/// lazy spectrum.
pub fn mixing_time_sandwich(summary: &WalkSpectrumSummary, pi_min: f64) -> (f64, f64) {
    let eps = 1.0 / std::f64::consts::E;
    let lower = (summary.relaxation_time - 1.0).max(0.0) * (1.0 / (2.0 * eps)).ln();
    let upper = summary.relaxation_time * (1.0 / (eps * pi_min)).ln();
    (lower, upper)
}

/// Eigenvalues of the *lazy* walk `(I + P)/2`, descending. The lazy map
/// `λ ↦ (1 + λ)/2` kills periodicity: all lazy eigenvalues are in
/// `[0, 1]`, so the lazy chain always mixes — matching
/// [`MixingConfig::lazy`](crate::mixing::MixingConfig::lazy).
pub fn lazy_spectrum(spectrum: &[f64]) -> Vec<f64> {
    spectrum.iter().map(|&l| (1.0 + l) / 2.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::second_eigenvalue_regular;
    use crate::stationary::stationary_distribution;
    use mrw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-8;

    fn assert_spectra_match(got: &[f64], mut want: Vec<f64>, label: &str) {
        want.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(got.len(), want.len(), "{label}: length");
        for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!((g - w).abs() < 1e-7, "{label}: λ_{i} = {g}, expected {w}");
        }
    }

    #[test]
    fn jacobi_diagonal_matrix_is_identity_operation() {
        let a = DenseMatrix::from_fn(4, 4, |i, j| if i == j { (i + 1) as f64 } else { 0.0 });
        let e = jacobi_eigen(&a);
        assert_spectra_match(&e.values, vec![1.0, 2.0, 3.0, 4.0], "diag");
    }

    #[test]
    fn jacobi_two_by_two_closed_form() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 2.0;
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < TOL);
        assert!((e.values[1] - 1.0).abs() < TOL);
    }

    #[test]
    fn jacobi_vectors_are_orthonormal_and_satisfy_av_eq_lv() {
        let g = generators::barbell(9);
        let n = g.n();
        let mut a = DenseMatrix::zeros(n, n);
        for (u, v) in g.edges() {
            a[(u as usize, v as usize)] += 1.0;
            if u != v {
                a[(v as usize, u as usize)] += 1.0;
            }
        }
        let e = jacobi_eigen(&a);
        // Orthonormality.
        for i in 0..n {
            for j in 0..n {
                let dot: f64 = (0..n).map(|r| e.vectors[(r, i)] * e.vectors[(r, j)]).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-7, "v_{i}·v_{j} = {dot}");
            }
        }
        // Residuals ‖Av − λv‖.
        for c in 0..n {
            let v: Vec<f64> = (0..n).map(|r| e.vectors[(r, c)]).collect();
            let av = a.matvec(&v);
            for r in 0..n {
                assert!(
                    (av[r] - e.values[c] * v[r]).abs() < 1e-6,
                    "residual at ({r},{c})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn jacobi_rejects_asymmetric() {
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 1)] = 1.0;
        jacobi_eigen(&a);
    }

    #[test]
    fn cycle_spectrum_is_cosines() {
        // P on the n-cycle: eigenvalues cos(2πj/n), j = 0..n−1.
        let n = 12;
        let got = walk_spectrum(&generators::cycle(n));
        let want: Vec<f64> = (0..n)
            .map(|j| (2.0 * PI * j as f64 / n as f64).cos())
            .collect();
        assert_spectra_match(&got, want, "cycle");
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: 1 once, −1/(n−1) with multiplicity n−1.
        let n = 9;
        let got = walk_spectrum(&generators::complete(n));
        let mut want = vec![1.0];
        want.extend(std::iter::repeat_n(-1.0 / (n as f64 - 1.0), n - 1));
        assert_spectra_match(&got, want, "complete");
    }

    #[test]
    fn complete_with_loops_spectrum_is_rank_one() {
        // K_n + loops: P = J/n — eigenvalues {1, 0, …, 0}.
        let n = 7;
        let got = walk_spectrum(&generators::complete_with_loops(n));
        let mut want = vec![1.0];
        want.extend(std::iter::repeat_n(0.0, n - 1));
        assert_spectra_match(&got, want, "complete+loops");
    }

    #[test]
    fn hypercube_spectrum_binomial_multiplicities() {
        // d-cube: eigenvalues 1 − 2i/d with multiplicity C(d, i).
        let d = 4usize;
        let got = walk_spectrum(&generators::hypercube(d as u32));
        let mut want = Vec::new();
        let mut binom = 1usize;
        for i in 0..=d {
            for _ in 0..binom {
                want.push(1.0 - 2.0 * i as f64 / d as f64);
            }
            if i < d {
                binom = binom * (d - i) / (i + 1);
            }
        }
        assert_spectra_match(&got, want, "hypercube");
    }

    #[test]
    fn torus_spectrum_is_sum_of_cycle_cosines() {
        // 2-d torus side s: eigenvalues (cos(2πa/s) + cos(2πb/s))/2.
        let s = 5;
        let got = walk_spectrum(&generators::torus_2d(s));
        let mut want = Vec::new();
        for a in 0..s {
            for b in 0..s {
                want.push(
                    ((2.0 * PI * a as f64 / s as f64).cos()
                        + (2.0 * PI * b as f64 / s as f64).cos())
                        / 2.0,
                );
            }
        }
        assert_spectra_match(&got, want, "torus");
    }

    #[test]
    fn bipartite_graphs_have_minus_one() {
        for g in [
            generators::cycle(8),
            generators::path(6),
            generators::star(7),
            generators::complete_bipartite(3, 4),
        ] {
            let s = walk_spectrum(&g);
            assert!(
                (s.last().unwrap() + 1.0).abs() < 1e-7,
                "{}: λ_min = {}",
                g.name(),
                s.last().unwrap()
            );
        }
    }

    #[test]
    fn spectrum_agrees_with_power_iteration_on_regular_graphs() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = generators::random_regular(64, 8, &mut rng).expect("regular sample");
        let summary = summarize_spectrum(&walk_spectrum(&g));
        // Power iteration reports the adjacency eigenvalue; divide by d to
        // land on the walk-matrix scale.
        let power = second_eigenvalue_regular(&g, 3000) / 8.0;
        assert!(
            (summary.lambda_star - power).abs() < 1e-3,
            "Jacobi λ* = {} vs power {power}",
            summary.lambda_star
        );
    }

    #[test]
    fn sandwich_brackets_exact_mixing_time_lazy() {
        // Lazy chain on the 3-cube: exact t_m from TV evolution must land
        // inside the spectral sandwich built from the lazy spectrum.
        let g = generators::hypercube(3);
        let lazy = lazy_spectrum(&walk_spectrum(&g));
        let summary = summarize_spectrum(&lazy);
        let pi_min = stationary_distribution(&g)
            .into_iter()
            .fold(f64::INFINITY, f64::min);
        let (lo, hi) = mixing_time_sandwich(&summary, pi_min);
        let tm = crate::mixing::mixing_time(&g, &crate::mixing::MixingConfig::lazy())
            .expect("lazy chain mixes") as f64;
        assert!(lo <= tm + 1.0, "lower {lo} > t_m {tm}");
        assert!(hi >= tm, "upper {hi} < t_m {tm}");
    }

    #[test]
    fn relaxation_time_infinite_on_bipartite() {
        let s = summarize_spectrum(&walk_spectrum(&generators::cycle(6)));
        assert!(s.relaxation_time.is_infinite());
        // ...and finite after lazification.
        let lazy = summarize_spectrum(&lazy_spectrum(&walk_spectrum(&generators::cycle(6))));
        assert!(lazy.relaxation_time.is_finite());
    }

    #[test]
    fn expander_gap_bounded_away_from_zero_as_n_grows() {
        // The (n,d,λ) property in action: λ* stays ≈ 2√(d−1)/d (Alon–
        // Boppana ballpark) while n quadruples.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut stars = Vec::new();
        for n in [32usize, 64, 128] {
            let g = generators::random_regular(n, 8, &mut rng).expect("regular");
            stars.push(summarize_spectrum(&walk_spectrum(&g)).lambda_star);
        }
        for &l in &stars {
            assert!(l < 0.85, "λ* = {l} too close to 1 for an expander");
        }
    }
}
