//! Power iteration for the expander parameter λ.
//!
//! Section 4.1 of the paper works with `(n,d,λ)`-graphs: d-regular graphs
//! whose nontrivial adjacency eigenvalues all have modulus ≤ λ. Random
//! d-regular graphs have `λ ≈ 2√(d−1)` w.h.p. (Friedman), but the paper's
//! Corollary 20 constants depend on the *actual* λ of the instance, so the
//! expander experiments certify each sampled graph here before running.
//!
//! Method: power iteration on the adjacency operator restricted to the
//! orthogonal complement of the all-ones vector (the trivial eigenvector of
//! a regular graph). The iteration converges to the dominant-in-modulus
//! nontrivial eigenvalue; `‖A x‖/‖x‖` is the estimate.

use mrw_graph::Graph;

/// Spectral summary of a regular graph in the paper's Lemma 19 notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralProfile {
    /// Degree `d`.
    pub d: usize,
    /// Estimated `λ = max(|λ₂|, |λ_n|)` of the adjacency matrix.
    pub lambda: f64,
    /// `s = log(2n) / log(d/λ)` (sub-walk length of Lemma 19).
    pub s: f64,
    /// `b = λ / (d − λ)` (the constant in Lemma 19 / Corollary 20).
    pub b: f64,
}

fn apply_adjacency(g: &Graph, x: &[f64], out: &mut [f64]) {
    out.fill(0.0);
    for v in 0..g.n() as u32 {
        let xv = x[v as usize];
        if xv == 0.0 {
            continue;
        }
        for &u in g.neighbors(v) {
            out[u as usize] += xv;
        }
    }
}

fn remove_mean(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

fn norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Estimates `λ = max(|λ₂|, |λ_n|)` of the adjacency matrix of a regular
/// graph by deflated power iteration.
///
/// Deterministic: the start vector is a fixed pseudo-random unit vector.
/// Converges geometrically at rate `(λ' / λ)` where `λ'` is the next
/// eigenvalue down; `iters = 2000` is far more than the expander
/// experiments need for 3 significant digits.
///
/// # Panics
/// If the graph is not regular or has fewer than 2 vertices.
pub fn second_eigenvalue_regular(g: &Graph, iters: usize) -> f64 {
    let d = g
        .regular_degree()
        .expect("second_eigenvalue_regular requires a regular graph");
    assert!(g.n() >= 2, "need at least two vertices");
    if d == 0 {
        return 0.0;
    }
    let n = g.n();
    // Fixed pseudo-random start (SplitMix64 bits -> [-0.5, 0.5)).
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    remove_mean(&mut x);
    let mut nx = norm(&x);
    if nx == 0.0 {
        // Astronomically unlikely; fall back to a deterministic non-uniform
        // vector.
        x[0] = 1.0;
        remove_mean(&mut x);
        nx = norm(&x);
    }
    for xi in x.iter_mut() {
        *xi /= nx;
    }
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for _ in 0..iters {
        apply_adjacency(g, &x, &mut y);
        // Deflate the trivial eigenvector (all-ones) — numerically re-done
        // every iteration to stop drift.
        remove_mean(&mut y);
        let ny = norm(&y);
        if ny < 1e-300 {
            return 0.0; // x was (numerically) entirely in the trivial space
        }
        lambda = ny; // ‖A x‖ with ‖x‖ = 1
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = *yi / ny;
        }
    }
    lambda
}

/// Computes the [`SpectralProfile`] (λ, `s`, `b`) used by Lemma 19 and
/// Corollary 20.
///
/// # Panics
/// If the graph is not regular, or if `λ ≥ d` numerically (disconnected or
/// bipartite graphs, which are not `(n,d,λ)`-expanders).
pub fn spectral_profile(g: &Graph, iters: usize) -> SpectralProfile {
    let d = g
        .regular_degree()
        .expect("spectral_profile requires a regular graph");
    let lambda = second_eigenvalue_regular(g, iters);
    assert!(
        lambda < d as f64 * (1.0 - 1e-9),
        "graph is not an expander: λ = {lambda} ≥ d = {d} (disconnected or bipartite?)"
    );
    let n = g.n() as f64;
    SpectralProfile {
        d,
        lambda,
        s: (2.0 * n).ln() / (d as f64 / lambda).ln(),
        b: lambda / (d as f64 - lambda),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_lambda_is_one() {
        // K_n adjacency eigenvalues: n−1 (trivial) and −1 (n−1 times).
        let g = generators::complete(20);
        let l = second_eigenvalue_regular(&g, 500);
        assert!((l - 1.0).abs() < 1e-6, "λ = {l}");
    }

    #[test]
    fn even_cycle_lambda_is_degree() {
        // Even cycle is bipartite: λ_n = −2, so max modulus = 2 = d.
        let g = generators::cycle(16);
        let l = second_eigenvalue_regular(&g, 3000);
        assert!((l - 2.0).abs() < 1e-4, "λ = {l}");
    }

    #[test]
    fn odd_cycle_lambda_is_2cos_pi_over_n() {
        // Odd cycle L_n: eigenvalues 2cos(2πk/n); the most negative is
        // −2cos(π/n), which dominates in modulus: λ = 2cos(π/n).
        let n = 15;
        let g = generators::cycle(n);
        let expect = 2.0 * (std::f64::consts::PI / n as f64).cos();
        let l = second_eigenvalue_regular(&g, 5000);
        assert!((l - expect).abs() < 1e-3, "λ = {l}, expected {expect}");
    }

    #[test]
    fn hypercube_lambda() {
        // Q_d eigenvalues: d − 2i; max nontrivial modulus = d (bipartite!)
        // via the -d eigenvalue... |λ_n| = d. Power iteration should find d.
        let g = generators::hypercube(4);
        let l = second_eigenvalue_regular(&g, 2000);
        assert!((l - 4.0).abs() < 1e-6, "λ = {l}");
    }

    #[test]
    fn random_regular_is_an_expander() {
        let mut rng = SmallRng::seed_from_u64(12345);
        let d = 8;
        let g = generators::random_regular(400, d, &mut rng).unwrap();
        let l = second_eigenvalue_regular(&g, 2000);
        // Friedman: λ ≈ 2√(d−1) ≈ 5.29; allow generous slack but demand a
        // real gap below d = 8.
        assert!(l < 6.5, "λ = {l} too large for a random 8-regular graph");
        assert!(l > 3.0, "λ = {l} implausibly small");
        let prof = spectral_profile(&g, 2000);
        assert!(prof.b > 0.0 && prof.s > 0.0);
        assert_eq!(prof.d, d);
    }

    #[test]
    #[should_panic(expected = "not an expander")]
    fn bipartite_rejected_by_profile() {
        // Even cycle: λ_n = −2 = −d, so λ = d and the profile must refuse.
        let g = generators::cycle(8);
        spectral_profile(&g, 2000);
    }

    #[test]
    #[should_panic(expected = "regular")]
    fn irregular_rejected() {
        second_eigenvalue_regular(&generators::star(5), 100);
    }

    #[test]
    fn deterministic() {
        let g = generators::complete(12);
        let a = second_eigenvalue_regular(&g, 200);
        let b = second_eigenvalue_regular(&g, 200);
        assert_eq!(a, b);
    }
}
