//! Commute times and effective resistances.
//!
//! The paper's toolbox (its reference \[15\],
//! Chandra–Raghavan–Ruzzo–Smolensky): viewing the graph as a unit-resistor
//! network,
//!
//! * `commute(u,v) = h(u,v) + h(v,u) = 2m · R_eff(u,v)`, and
//! * `C(G) ≤ O(m · R_max · log n)` — the resistance route to Matthews-type
//!   bounds, and the tool behind the cover-time orders in Table 1
//!   (grid/torus resistances give the `log` factors).
//!
//! Everything here derives from the exact hitting times, so it is exact up
//! to LU round-off.

use mrw_graph::Graph;

use crate::hitting::HittingTimes;

/// Exact commute time `h(u,v) + h(v,u)`.
pub fn commute_time(ht: &HittingTimes, u: u32, v: u32) -> f64 {
    ht.get(u, v) + ht.get(v, u)
}

/// Effective resistance `R_eff(u,v) = commute(u,v) / 2m`.
pub fn effective_resistance(g: &Graph, ht: &HittingTimes, u: u32, v: u32) -> f64 {
    assert_eq!(g.n(), ht.n(), "hitting times belong to a different graph");
    commute_time(ht, u, v) / (2.0 * g.m() as f64)
}

/// Maximum effective resistance over all vertex pairs.
pub fn max_effective_resistance(g: &Graph, ht: &HittingTimes) -> f64 {
    assert_eq!(g.n(), ht.n(), "hitting times belong to a different graph");
    let n = g.n() as u32;
    let mut best = 0.0f64;
    for u in 0..n {
        for v in (u + 1)..n {
            best = best.max(effective_resistance(g, ht, u, v));
        }
    }
    best
}

/// The Chandra et al. cover-time bracket:
/// `m·R_max ≤ C(G) ≤ O(m·R_max·log n)`. Returns `(lower, upper)` with the
/// explicit constants of the original paper (`lower = m·R_max`,
/// `upper = 2e³·m·R_max·ln n + n`, loose but concrete).
pub fn cover_time_resistance_bracket(g: &Graph, ht: &HittingTimes) -> (f64, f64) {
    let m_r = g.m() as f64 * max_effective_resistance(g, ht);
    let upper = 2.0 * std::f64::consts::E.powi(3) * m_r * (g.n() as f64).ln() + g.n() as f64;
    (m_r, upper)
}

/// Foster's theorem check value: `Σ_{(u,v)∈E} R_eff(u,v) = n − 1` on every
/// connected graph — a strong global validation of the whole
/// hitting-time pipeline.
pub fn foster_sum(g: &Graph, ht: &HittingTimes) -> f64 {
    g.edges()
        .filter(|&(u, v)| u != v)
        .map(|(u, v)| effective_resistance(g, ht, u, v))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting_times_all;
    use mrw_graph::generators;

    const TOL: f64 = 1e-6;

    #[test]
    fn path_resistance_is_distance() {
        // Series resistors: R_eff(i, j) = |i − j|.
        let g = generators::path(8);
        let ht = hitting_times_all(&g);
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i != j {
                    let r = effective_resistance(&g, &ht, i, j);
                    let expect = (i as f64 - j as f64).abs();
                    assert!((r - expect).abs() < TOL, "R({i},{j}) = {r}");
                }
            }
        }
    }

    #[test]
    fn cycle_resistance_parallel_arcs() {
        // Two parallel paths of length d and n−d: R = d(n−d)/n.
        let n = 12;
        let g = generators::cycle(n);
        let ht = hitting_times_all(&g);
        for d in 1..n as u32 {
            let r = effective_resistance(&g, &ht, 0, d);
            let expect = (d as f64) * (n as f64 - d as f64) / n as f64;
            assert!((r - expect).abs() < TOL, "R(0,{d}) = {r} ≠ {expect}");
        }
    }

    #[test]
    fn complete_graph_resistance() {
        // K_n: R_eff = 2/n between any pair.
        let n = 10;
        let g = generators::complete(n);
        let ht = hitting_times_all(&g);
        let r = effective_resistance(&g, &ht, 0, 5);
        assert!((r - 2.0 / n as f64).abs() < TOL);
    }

    #[test]
    fn commute_symmetric() {
        let g = generators::barbell(13);
        let ht = hitting_times_all(&g);
        for (u, v) in [(0u32, 12u32), (3, 9), (1, 7)] {
            assert!((commute_time(&ht, u, v) - commute_time(&ht, v, u)).abs() < TOL);
        }
    }

    #[test]
    fn foster_theorem_holds() {
        for g in [
            generators::cycle(10),
            generators::complete(8),
            generators::torus_2d(4),
            generators::barbell(11),
            generators::balanced_tree(2, 3),
            generators::lollipop(9),
        ] {
            let ht = hitting_times_all(&g);
            let s = foster_sum(&g, &ht);
            let expect = (g.n() - 1) as f64;
            assert!(
                (s - expect).abs() < 1e-4,
                "{}: Foster sum {s} ≠ n−1 = {expect}",
                g.name()
            );
        }
    }

    #[test]
    fn bracket_contains_known_cover_times() {
        // Cycle: C = n(n−1)/2 must sit in [m·R_max, 2e³·m·R_max·ln n + n].
        let n = 16;
        let g = generators::cycle(n);
        let ht = hitting_times_all(&g);
        let (lo, hi) = cover_time_resistance_bracket(&g, &ht);
        let c = (n * (n - 1)) as f64 / 2.0;
        assert!(lo <= c, "lower {lo} > C {c}");
        assert!(hi >= c, "upper {hi} < C {c}");
    }

    #[test]
    fn max_resistance_on_path_is_length() {
        let g = generators::path(9);
        let ht = hitting_times_all(&g);
        assert!((max_effective_resistance(&g, &ht) - 8.0).abs() < TOL);
    }
}
