//! Exact Markov-chain linear algebra for simple random walks.
//!
//! The paper's quantities — hitting time `h(u,v)`, maximum hitting time
//! `h_max`, mixing time `t_m`, and the spectral data behind the
//! `(n,d,λ)`-graph expander arguments of Section 4.1 — all admit exact
//! computation on finite graphs. This crate provides them:
//!
//! * [`dense`] — a dense matrix with partial-pivot LU (solve / invert),
//!   built from scratch.
//! * [`transition`] — the walk's transition operator `P` applied sparsely
//!   straight off the CSR graph (`O(m)` per application), plus the lazy
//!   variant `(I + P)/2`.
//! * [`stationary`] — the stationary distribution `π(v) = δ(v)/2m`.
//! * [`hitting`] — exact hitting times via the fundamental matrix
//!   `Z = (I − P + 𝟙πᵀ)⁻¹` (all pairs from one `O(n³)` inversion, Grinstead
//!   & Snell Thm 11.16) and via a direct one-target linear solve as a
//!   cross-check.
//! * [`mixing`] — exact total-variation mixing time by evolving the
//!   t-step distribution sparsely, matching the paper's definition
//!   (`Σ_v |p^t_{u,v} − π(v)| < 1/e` for all `u`).
//! * [`power`] — power iteration for the second-largest-in-modulus
//!   eigenvalue `λ` of the adjacency operator, used to certify that a
//!   sampled random regular graph really is an `(n,d,λ)`-expander.
//! * [`eigen`] — full walk spectrum by cyclic Jacobi rotations: an
//!   independent certificate for the power-iteration `λ`, the relaxation
//!   time, and the reversible-chain mixing-time sandwich.
//! * [`iterative`] — matrix-free solvers (Gauss–Seidel hitting times,
//!   conjugate-gradient effective resistances) that extend the exact
//!   pipeline far past the dense-LU size limit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod eigen;
pub mod hitting;
pub mod iterative;
pub mod mixing;
pub mod power;
pub mod resistance;
pub mod stationary;
pub mod transition;

pub use dense::DenseMatrix;
pub use eigen::{
    jacobi_eigen, lazy_spectrum, mixing_time_sandwich, summarize_spectrum, walk_spectrum,
    SymmetricEigen, WalkSpectrumSummary,
};
pub use hitting::{hitting_times_all, hitting_times_to, HittingTimes};
pub use iterative::{
    commute_time_cg, conjugate_gradient, effective_resistance_cg, hitting_times_to_gs,
    IterativeSolve, LaplacianOp,
};
pub use mixing::{mixing_time, mixing_time_from, MixingConfig};
pub use power::{second_eigenvalue_regular, spectral_profile};
pub use resistance::{commute_time, effective_resistance, max_effective_resistance};
pub use stationary::stationary_distribution;
pub use transition::TransitionOp;
