//! Stationary distribution of the simple random walk.
//!
//! On a connected undirected graph the walk's unique stationary
//! distribution is `π(v) = δ(v) / Σ_u δ(u)` (degree-proportional); for
//! regular graphs it is uniform, which is what makes the paper's Theorem 9
//! proof work ("the stationary distribution of a random walk on G is
//! uniform (G is d-regular)").

use mrw_graph::Graph;

/// The stationary distribution `π`.
///
/// # Panics
/// If the graph has no edges (the walk is undefined).
pub fn stationary_distribution(g: &Graph) -> Vec<f64> {
    let total = g.degree_sum();
    assert!(
        total > 0,
        "stationary distribution undefined on an edgeless graph"
    );
    (0..g.n() as u32)
        .map(|v| g.degree(v) as f64 / total as f64)
        .collect()
}

/// Total-variation distance `½·Σ|p − q|` between two distributions.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// The paper's mixing distance: `Σ_v |p(v) − π(v)|` (un-halved L1 norm, as
/// in its definition of `t_m` in §2).
pub fn l1_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;
    use mrw_graph::GraphBuilder;

    #[test]
    fn regular_graph_uniform() {
        let g = generators::cycle(8);
        let pi = stationary_distribution(&g);
        for &x in &pi {
            assert!((x - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn star_is_degree_proportional() {
        let g = generators::star(5); // hub degree 4, leaves degree 1
        let pi = stationary_distribution(&g);
        assert!((pi[0] - 0.5).abs() < 1e-12);
        for &p in &pi[1..5] {
            assert!((p - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn sums_to_one() {
        let g = generators::barbell(11);
        let pi = stationary_distribution(&g);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationarity_fixed_point() {
        // π should be invariant under one transition step.
        let g = generators::lollipop(9);
        let pi = stationary_distribution(&g);
        let op = crate::transition::TransitionOp::new(&g);
        let mut out = vec![0.0; g.n()];
        op.step(&pi, &mut out);
        assert!(l1_distance(&pi, &out) < 1e-12);
    }

    #[test]
    fn distances() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert!((tv_distance(&p, &q) - 1.0).abs() < 1e-12);
        assert!((l1_distance(&p, &q) - 2.0).abs() < 1e-12);
        assert_eq!(tv_distance(&p, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "edgeless")]
    fn edgeless_rejected() {
        let g = GraphBuilder::new(3).build("empty");
        stationary_distribution(&g);
    }
}
