//! The simple-random-walk transition operator applied sparsely.
//!
//! For the walk of the paper (§2): from `v`, move to a uniformly random
//! neighbor, `P(v,u) = 1/δ(v)` for `(v,u) ∈ E`. Distribution evolution is
//! `p_{t+1}(u) = Σ_{v ∈ N(u)} p_t(v)/δ(v)` — an `O(m)` sparse pass over the
//! CSR arrays, no matrix materialized.

use mrw_graph::Graph;

/// Sparse application of the walk operator `P` (and its lazy variant) for a
/// fixed graph.
pub struct TransitionOp<'g> {
    g: &'g Graph,
    /// Precomputed `1/δ(v)`; `0` for isolated vertices (which a walk can
    /// never leave — estimators reject disconnected graphs anyway).
    inv_deg: Vec<f64>,
}

impl<'g> TransitionOp<'g> {
    /// Builds the operator for `g`.
    pub fn new(g: &'g Graph) -> Self {
        let inv_deg = (0..g.n() as u32)
            .map(|v| {
                let d = g.degree(v);
                if d == 0 {
                    0.0
                } else {
                    1.0 / d as f64
                }
            })
            .collect();
        TransitionOp { g, inv_deg }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// One step of distribution evolution: `out = Pᵀ·p`
    /// (`out(u) = Σ_{v∈N(u)} p(v)/δ(v)`). `out` is fully overwritten.
    pub fn step(&self, p: &[f64], out: &mut [f64]) {
        let n = self.g.n();
        assert_eq!(p.len(), n, "distribution length mismatch");
        assert_eq!(out.len(), n, "output length mismatch");
        out.fill(0.0);
        for v in 0..n as u32 {
            let w = p[v as usize] * self.inv_deg[v as usize];
            if w == 0.0 {
                continue;
            }
            for &u in self.g.neighbors(v) {
                out[u as usize] += w;
            }
        }
    }

    /// One lazy step: `out = ((I + P)ᵀ/2)·p`. The lazy walk is aperiodic on
    /// every graph, which is what you want when computing mixing times of
    /// bipartite families (even cycles, hypercubes) whose plain walk never
    /// mixes.
    pub fn step_lazy(&self, p: &[f64], out: &mut [f64]) {
        self.step(p, out);
        for (o, &pi) in out.iter_mut().zip(p) {
            *o = 0.5 * *o + 0.5 * pi;
        }
    }

    /// Evolves a point mass at `start` for `t` steps and returns the
    /// resulting distribution.
    pub fn evolve_from(&self, start: u32, t: usize, lazy: bool) -> Vec<f64> {
        let n = self.g.n();
        let mut p = vec![0.0; n];
        p[start as usize] = 1.0;
        let mut q = vec![0.0; n];
        for _ in 0..t {
            if lazy {
                self.step_lazy(&p, &mut q);
            } else {
                self.step(&p, &mut q);
            }
            std::mem::swap(&mut p, &mut q);
        }
        p
    }

    /// Materializes `P` as a dense matrix (`P[v][u] = 1/δ(v)` for
    /// `(v,u) ∈ E`). Only for the exact hitting-time solves; `O(n²)` memory.
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let n = self.g.n();
        let mut m = crate::dense::DenseMatrix::zeros(n, n);
        for v in 0..n as u32 {
            for &u in self.g.neighbors(v) {
                m[(v as usize, u as usize)] = self.inv_deg[v as usize];
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;

    fn total(p: &[f64]) -> f64 {
        p.iter().sum()
    }

    #[test]
    fn step_preserves_probability_mass() {
        let g = generators::cycle(10);
        let op = TransitionOp::new(&g);
        let p = op.evolve_from(0, 17, false);
        assert!((total(&p) - 1.0).abs() < 1e-12);
        let q = op.evolve_from(3, 9, true);
        assert!((total(&q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_step_on_cycle_splits_evenly() {
        let g = generators::cycle(5);
        let op = TransitionOp::new(&g);
        let p = op.evolve_from(0, 1, false);
        assert!((p[1] - 0.5).abs() < 1e-12);
        assert!((p[4] - 0.5).abs() < 1e-12);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn lazy_step_keeps_half_mass() {
        let g = generators::cycle(5);
        let op = TransitionOp::new(&g);
        let p = op.evolve_from(0, 1, true);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
        assert!((p[4] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn even_cycle_walk_is_periodic() {
        // On the even cycle the plain walk alternates parity classes.
        let g = generators::cycle(6);
        let op = TransitionOp::new(&g);
        let p = op.evolve_from(0, 101, false);
        // After an odd number of steps, mass only on odd vertices.
        assert_eq!(p[0], 0.0);
        assert_eq!(p[2], 0.0);
        assert_eq!(p[4], 0.0);
        assert!(p[1] > 0.0);
    }

    #[test]
    fn dense_agrees_with_sparse() {
        let g = generators::complete(6);
        let op = TransitionOp::new(&g);
        let dense = op.to_dense();
        // p0 = point mass at 2; sparse one step vs dense Pᵀ·p.
        let p = op.evolve_from(2, 1, false);
        // dense: p1(u) = Σ_v p0(v) P[v][u] = P[2][u]
        for u in 0..6 {
            assert!((p[u] - dense[(2, u)]).abs() < 1e-12);
        }
    }

    #[test]
    fn rows_of_dense_sum_to_one() {
        let g = generators::barbell(9);
        let dense = TransitionOp::new(&g).to_dense();
        for r in 0..g.n() {
            let s: f64 = dense.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {r} sums to {s}");
        }
    }

    #[test]
    fn complete_graph_mixes_in_one_step_from_uniform_neighbors() {
        let g = generators::complete_with_loops(8);
        let op = TransitionOp::new(&g);
        let p = op.evolve_from(0, 1, false);
        for &x in &p {
            assert!((x - 1.0 / 8.0).abs() < 1e-12);
        }
    }
}
