//! Exact mixing time by distribution evolution.
//!
//! The paper (§2) defines the mixing time `t_m` as the smallest `t > 0`
//! such that for **all** starting vertices `u`,
//! `Σ_v |p^t_{u,v} − π(v)| < 1/e`. We compute it exactly by evolving the
//! t-step distribution of each start with sparse `O(m)` steps and checking
//! the L1 distance to the stationary distribution.
//!
//! Caveat inherited from the definition: on bipartite graphs (even cycles,
//! hypercubes, grids with even sides) the plain walk is periodic and never
//! mixes. [`MixingConfig::lazy`] switches to the lazy walk `(I+P)/2`,
//! standard practice when a finite `t_m` is wanted for such families; the
//! experiments report which convention they used.

use mrw_graph::{algo, Graph};

use crate::stationary::{l1_distance, stationary_distribution};
use crate::transition::TransitionOp;

/// Configuration for mixing-time computation.
#[derive(Debug, Clone)]
pub struct MixingConfig {
    /// L1 threshold; the paper uses `1/e`.
    pub epsilon: f64,
    /// Use the lazy walk `(I+P)/2` (needed on bipartite graphs).
    pub lazy: bool,
    /// Give up (return `None`) after this many steps.
    pub max_steps: usize,
    /// Check convergence from every vertex (`None`) or only from the given
    /// starts (vertex-transitive graphs need just one).
    pub starts: Option<Vec<u32>>,
}

impl Default for MixingConfig {
    fn default() -> Self {
        MixingConfig {
            epsilon: 1.0 / std::f64::consts::E,
            lazy: false,
            max_steps: 1_000_000,
            starts: None,
        }
    }
}

impl MixingConfig {
    /// Default config with the lazy walk enabled.
    pub fn lazy() -> Self {
        MixingConfig {
            lazy: true,
            ..Default::default()
        }
    }

    /// Restricts the start set (use a single start on vertex-transitive
    /// graphs — cycles, tori, hypercubes, complete graphs — where every
    /// start is equivalent).
    pub fn with_starts(mut self, starts: Vec<u32>) -> Self {
        self.starts = Some(starts);
        self
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// Smallest `t` such that the walk from `start` is within `epsilon` of
/// stationarity in L1; `None` if not reached within `max_steps`.
pub fn mixing_time_from(g: &Graph, start: u32, cfg: &MixingConfig) -> Option<usize> {
    assert!(
        algo::is_connected(g),
        "mixing time undefined on a disconnected graph"
    );
    let n = g.n();
    assert!((start as usize) < n, "start {start} out of range");
    let pi = stationary_distribution(g);
    let op = TransitionOp::new(g);
    let mut p = vec![0.0; n];
    p[start as usize] = 1.0;
    let mut q = vec![0.0; n];
    for t in 1..=cfg.max_steps {
        if cfg.lazy {
            op.step_lazy(&p, &mut q);
        } else {
            op.step(&p, &mut q);
        }
        std::mem::swap(&mut p, &mut q);
        if l1_distance(&p, &pi) < cfg.epsilon {
            return Some(t);
        }
    }
    None
}

/// The graph's mixing time: the max of [`mixing_time_from`] over the start
/// set (`cfg.starts`, defaulting to all vertices). `None` if any start
/// fails to mix within the budget.
pub fn mixing_time(g: &Graph, cfg: &MixingConfig) -> Option<usize> {
    let all: Vec<u32>;
    let starts: &[u32] = match &cfg.starts {
        Some(s) => s,
        None => {
            all = (0..g.n() as u32).collect();
            &all
        }
    };
    let mut worst = 0usize;
    for &s in starts {
        worst = worst.max(mixing_time_from(g, s, cfg)?);
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrw_graph::generators;

    #[test]
    fn complete_graph_mixes_immediately() {
        // With self-loops, one step lands exactly uniform: t_m = 1.
        let g = generators::complete_with_loops(16);
        let tm = mixing_time(&g, &MixingConfig::default()).unwrap();
        assert_eq!(tm, 1);
    }

    #[test]
    fn complete_graph_without_loops_fast() {
        let g = generators::complete(16);
        let tm = mixing_time(&g, &MixingConfig::default()).unwrap();
        assert!(tm <= 3, "t_m = {tm}");
    }

    #[test]
    fn even_cycle_never_mixes_plain() {
        let g = generators::cycle(8);
        let cfg = MixingConfig {
            max_steps: 5000,
            ..Default::default()
        };
        assert_eq!(mixing_time_from(&g, 0, &cfg), None);
    }

    #[test]
    fn even_cycle_mixes_lazily() {
        let g = generators::cycle(8);
        let tm = mixing_time(&g, &MixingConfig::lazy()).unwrap();
        assert!(tm > 1 && tm < 500, "t_m = {tm}");
    }

    #[test]
    fn odd_cycle_mixes_plain() {
        let g = generators::cycle(9);
        let tm = mixing_time(&g, &MixingConfig::default()).unwrap();
        assert!(tm > 1, "t_m = {tm}");
    }

    #[test]
    fn cycle_mixing_grows_quadratically() {
        // Table 1: cycle t_m = O(n²). Compare n and 2n (odd sizes, plain).
        let t1 = mixing_time(&generators::cycle(15), &MixingConfig::default()).unwrap();
        let t2 = mixing_time(&generators::cycle(31), &MixingConfig::default()).unwrap();
        let ratio = t2 as f64 / t1 as f64;
        assert!(ratio > 2.5 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn vertex_transitive_single_start_matches_all() {
        let g = generators::cycle(9);
        let all = mixing_time(&g, &MixingConfig::default()).unwrap();
        let one = mixing_time(&g, &MixingConfig::default().with_starts(vec![0])).unwrap();
        assert_eq!(all, one);
    }

    #[test]
    fn hypercube_lazy_mixing_small() {
        // t_m = Θ(log n log log n): tiny for n = 64.
        let g = generators::hypercube(6);
        let tm = mixing_time(
            &g,
            &MixingConfig::lazy().with_starts(vec![0]), // vertex-transitive
        )
        .unwrap();
        assert!(tm < 100, "t_m = {tm}");
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let g = generators::cycle(101);
        let cfg = MixingConfig {
            max_steps: 3,
            ..Default::default()
        };
        assert_eq!(mixing_time(&g, &cfg), None);
    }

    #[test]
    fn barbell_mixes_slowly() {
        // The bottleneck through the center makes t_m large relative to a
        // clique of the same size.
        let bar = mixing_time(&generators::barbell(17), &MixingConfig::lazy()).unwrap();
        let cli = mixing_time(&generators::complete(17), &MixingConfig::lazy()).unwrap();
        assert!(bar > 10 * cli, "barbell {bar} vs clique {cli}");
    }
}
