//! Property-based tests for the linear-algebra layer: LU correctness on
//! random well-conditioned systems, Markov-chain identities on random
//! connected graphs.

use mrw_graph::{algo, generators};
use mrw_spectral::dense::DenseMatrix;
use mrw_spectral::resistance::foster_sum;
use mrw_spectral::{hitting_times_all, stationary_distribution, TransitionOp};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_connected_graph(n: usize, seed: u64) -> Option<mrw_graph::Graph> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = generators::erdos_renyi_connected_regime(n, 3.0, &mut rng);
    algo::is_connected(&g).then_some(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lu_solves_diagonally_dominant_systems(n in 2usize..24, seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            let mut row_sum = 0.0;
            for c in 0..n {
                if r != c {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    a[(r, c)] = v;
                    row_sum += v.abs();
                }
            }
            a[(r, r)] = row_sum + rng.gen_range(0.5..2.0); // strictly dominant
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let b = a.matvec(&x_true);
        let x = a.solve(&b).expect("dominant matrix is nonsingular");
        for (xs, xt) in x.iter().zip(&x_true) {
            prop_assert!((xs - xt).abs() < 1e-7 * (1.0 + xt.abs()));
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity(n in 2usize..14, seed in 0u64..5000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = DenseMatrix::from_fn(n, n, |r, c| {
            if r == c { n as f64 + 1.0 } else { ((r * 31 + c * 17 + seed as usize) % 13) as f64 / 13.0 }
        });
        let _ = &mut rng;
        if let Some(inv) = a.inverse() {
            let prod = a.matmul(&inv);
            prop_assert!(prod.max_abs_diff(&DenseMatrix::identity(n)) < 1e-7);
        }
    }

    #[test]
    fn stationarity_is_fixed_point_on_random_graphs(n in 5usize..40, seed in 0u64..2000) {
        if let Some(g) = random_connected_graph(n, seed) {
            let pi = stationary_distribution(&g);
            let op = TransitionOp::new(&g);
            let mut out = vec![0.0; g.n()];
            op.step(&pi, &mut out);
            let drift: f64 = pi.iter().zip(&out).map(|(a, b)| (a - b).abs()).sum();
            prop_assert!(drift < 1e-10, "π not stationary: drift {drift}");
        }
    }

    #[test]
    fn hitting_time_triangle_inequality_and_return_identity(n in 5usize..20, seed in 0u64..1000) {
        if let Some(g) = random_connected_graph(n, seed) {
            let ht = hitting_times_all(&g);
            let pi = stationary_distribution(&g);
            // One-step decomposition at each target v: the expected return
            // time 1/π(v) equals 1 + avg over neighbors u of h(u, v).
            for v in 0..g.n() as u32 {
                let avg: f64 = g.neighbors(v).iter().map(|&u| ht.get(u, v)).sum::<f64>()
                    / g.degree(v) as f64;
                let ret = 1.0 + avg;
                prop_assert!(
                    (ret - 1.0 / pi[v as usize]).abs() < 1e-6 / pi[v as usize].min(1.0),
                    "return identity fails at {v}: {ret} vs {}",
                    1.0 / pi[v as usize]
                );
            }
        }
    }

    #[test]
    fn foster_theorem_on_random_graphs(n in 5usize..28, seed in 0u64..1000) {
        if let Some(g) = random_connected_graph(n, seed) {
            let ht = hitting_times_all(&g);
            let s = foster_sum(&g, &ht);
            prop_assert!(
                (s - (g.n() as f64 - 1.0)).abs() < 1e-5,
                "{}: Foster sum {s}",
                g.name()
            );
        }
    }

    #[test]
    fn evolution_preserves_mass_on_random_graphs(n in 4usize..40, seed in 0u64..1000, t in 1usize..50) {
        if let Some(g) = random_connected_graph(n, seed) {
            let op = TransitionOp::new(&g);
            let p = op.evolve_from(0, t, seed % 2 == 0);
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-10);
            prop_assert!(p.iter().all(|&x| x >= -1e-15));
        }
    }
}
