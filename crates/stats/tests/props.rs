//! Property-based tests for the statistics layer.

use mrw_stats::ci::{bootstrap_mean_ci, normal_ci};
use mrw_stats::quantile::{five_num, quantile};
use mrw_stats::regression::{linear_fit, power_law_fit};
use mrw_stats::{ladder, Precision, SequentialCi, Summary};
use proptest::prelude::*;

fn finite_sample() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn summary_merge_any_split(xs in finite_sample(), split_frac in 0.0f64..1.0) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let whole = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..split]);
        let b = Summary::from_slice(&xs[split..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn summary_mean_within_min_max(xs in finite_sample()) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= 0.0);
    }

    #[test]
    fn quantiles_monotone_and_bounded(xs in finite_sample(), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let f = five_num(&xs);
        prop_assert!(f.min <= f.q25 && f.q25 <= f.median && f.median <= f.q75 && f.q75 <= f.max);
        prop_assert!(a >= f.min - 1e-12 && b <= f.max + 1e-12);
    }

    #[test]
    fn normal_ci_contains_point_and_scales(xs in prop::collection::vec(-1e3f64..1e3, 3..100)) {
        let s = Summary::from_slice(&xs);
        let ci90 = normal_ci(&s, 0.90);
        let ci99 = normal_ci(&s, 0.99);
        prop_assert!(ci90.contains(s.mean()));
        prop_assert!(ci99.half_width() >= ci90.half_width());
    }

    #[test]
    fn bootstrap_within_sample_range(xs in prop::collection::vec(-1e3f64..1e3, 2..60), seed in 0u64..1000) {
        let ci = bootstrap_mean_ci(&xs, 0.95, 200, seed);
        let s = Summary::from_slice(&xs);
        prop_assert!(ci.lo >= s.min() - 1e-9);
        prop_assert!(ci.hi <= s.max() + 1e-9);
        prop_assert!(ci.lo <= ci.hi);
    }

    #[test]
    fn linear_fit_recovers_exact_lines(slope in -100.0f64..100.0, intercept in -100.0f64..100.0) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = linear_fit(&xs, &ys);
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
    }

    #[test]
    fn power_fit_recovers_exact_laws(exp in -3.0f64..3.0, coeff in 0.01f64..100.0) {
        let xs: Vec<f64> = (1..16).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| coeff * x.powf(exp)).collect();
        let fit = power_law_fit(&xs, &ys);
        prop_assert!((fit.exponent - exp).abs() < 1e-6);
        prop_assert!((fit.coeff - coeff).abs() < 1e-6 * coeff);
    }

    #[test]
    fn ladders_sorted_within_range(lo in 1u64..1000, span in 1u64..100_000, points in 2usize..20) {
        let hi = lo + span;
        let v = ladder::geometric(lo, hi, points);
        prop_assert_eq!(*v.first().unwrap(), lo);
        prop_assert_eq!(*v.last().unwrap(), hi);
        for w in v.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn powers_of_two_are_powers(lo in 1u64..1_000_000, span in 0u64..10_000_000) {
        for x in ladder::powers_of_two(lo, lo + span) {
            prop_assert!(x.is_power_of_two());
            prop_assert!(x >= lo && x <= lo + span);
        }
    }

    #[test]
    fn precision_wave_schedule_fills_the_cap_exactly(
        floor in 2usize..64,
        cap_extra in 0usize..500,
    ) {
        let cap = floor + cap_extra;
        let rule = Precision::absolute(1.0).with_min_trials(floor).with_max_trials(cap);
        let mut consumed = 0usize;
        let mut waves = 0usize;
        loop {
            let w = rule.next_wave(consumed);
            if w == 0 {
                break;
            }
            consumed += w;
            waves += 1;
            prop_assert!(consumed <= cap, "overran cap: {} > {}", consumed, cap);
            prop_assert!(waves <= 64, "schedule failed to converge");
        }
        // Running the schedule to exhaustion lands exactly on the cap —
        // a run that never satisfies its rule consumes precisely max_trials.
        prop_assert_eq!(consumed, cap);
    }

    #[test]
    fn sequential_ci_stops_iff_rule_satisfied(
        xs in prop::collection::vec(0.0f64..1e4, 4..120),
        rel in 0.01f64..1.0,
        floor in 2usize..16,
    ) {
        let rule = Precision::relative(rel)
            .with_min_trials(floor)
            .with_max_trials(1 << 20);
        let mut seq = SequentialCi::new(rule);
        for &x in &xs {
            seq.push(x);
        }
        let s = Summary::from_slice(&xs);
        prop_assert_eq!(
            seq.decision() == mrw_stats::precision::Decision::PrecisionReached,
            rule.satisfied_by(&s)
        );
        if seq.is_done() && xs.len() < (1 << 20) {
            // Below the cap, done means the achieved half-width meets the
            // demanded one.
            prop_assert!(seq.ci().half_width() <= rule.demanded_half_width(&s) + 1e-9);
        }
    }

    #[test]
    fn tighter_targets_never_stop_sooner(
        xs in prop::collection::vec(1.0f64..1e4, 8..100),
    ) {
        // satisfied_by is monotone in the target: a 5% rule satisfied
        // implies a 10% rule satisfied on the same sample.
        let s = Summary::from_slice(&xs);
        let tight = Precision::relative(0.05).with_min_trials(4);
        let loose = Precision::relative(0.10).with_min_trials(4);
        if tight.satisfied_by(&s) {
            prop_assert!(loose.satisfied_by(&s));
        }
    }
}
