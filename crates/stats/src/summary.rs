//! Single-pass streaming summary statistics (Welford's algorithm).
//!
//! [`Summary`] accumulates count, mean, variance (via the centered second
//! moment `M2`), minimum and maximum in one pass with O(1) state. Two
//! summaries can be [merged](Summary::merge) exactly (Chan's parallel
//! variant), which lets worker threads accumulate locally and combine at the
//! end without any loss of precision relative to a sequential pass.

/// Streaming summary of a sample of `f64` observations.
///
/// ```
/// use mrw_stats::Summary;
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Reconstructs a summary from its sufficient statistics — the
    /// inverse of the accessors. This is how exact integer accumulators
    /// ([`IntMoments`](crate::IntMoments)) and deserialized shard reports
    /// rebuild a `Summary` view: given the same `(count, mean, m2, min,
    /// max)`, the result is bit-identical regardless of how the sample was
    /// partitioned.
    ///
    /// # Panics
    /// If `m2` is negative, or `count == 0` with nonzero statistics.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        assert!(m2 >= 0.0, "negative second moment {m2}");
        if count == 0 {
            assert!(
                mean == 0.0 && m2 == 0.0,
                "empty summary with nonzero moments"
            );
            return Summary::new();
        }
        Summary {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Builds a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(
            x.is_finite(),
            "Summary::push requires finite values, got {x}"
        );
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (exact, order-independent up to
    /// floating-point rounding).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean. Zero for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`M2 / (n - 1)`). Zero when `n < 2`.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`M2 / n`). Zero when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`s / √n`).
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Coefficient of variation (`s / mean`); `NaN` when the mean is zero.
    pub fn coeff_of_variation(&self) -> f64 {
        self.std_dev() / self.mean()
    }

    /// Relative half-width of the 95% normal CI around the mean; a common
    /// stopping rule for adaptive Monte-Carlo sampling.
    pub fn relative_precision(&self) -> f64 {
        if self.count < 2 || self.mean() == 0.0 {
            f64::INFINITY
        } else {
            1.96 * self.std_err() / self.mean().abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
        assert!(s.relative_precision().is_infinite());
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.push(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64).sqrt())
            .collect();
        let s = Summary::from_slice(&xs);
        let (mean, var) = naive_mean_var(&xs);
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.variance() - var).abs() < 1e-8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 100.0).collect();
        let whole = Summary::from_slice(&xs);
        for split in [1, 7, 250, 499] {
            let mut a = Summary::from_slice(&xs[..split]);
            let b = Summary::from_slice(&xs[split..]);
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-10);
            assert!((a.variance() - whole.variance()).abs() < 1e-8);
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut s = Summary::from_slice(&xs);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn std_err_shrinks_with_n() {
        let mut small = Summary::new();
        let mut large = Summary::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..10_000 {
            large.push((i % 3) as f64);
        }
        assert!(large.std_err() < small.std_err());
    }

    #[test]
    fn constant_sample_has_zero_variance() {
        let s = Summary::from_slice(&[5.0; 64]);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.mean(), 5.0);
    }
}
