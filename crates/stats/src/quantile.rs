//! Order statistics on sample vectors.
//!
//! Cover-time distributions are skewed; the median and tail quantiles are
//! often more informative than the mean, and Aldous' concentration theorem
//! (Theorem 17 in the paper) predicts `τ/C → 1`, which we check empirically
//! by looking at the interquartile range shrinking relative to the mean.

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `sample` using linear
/// interpolation between order statistics (type-7, the R/NumPy default).
///
/// Sorts a copy; O(n log n). Panics on an empty sample or NaN values.
pub fn quantile(sample: &[f64], q: f64) -> f64 {
    assert!(!sample.is_empty(), "quantile of empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level must be in [0,1], got {q}"
    );
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&xs, q)
}

/// Like [`quantile`] but assumes `sorted` is already ascending. O(1).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of a sample (50th percentile).
pub fn median(sample: &[f64]) -> f64 {
    quantile(sample, 0.5)
}

/// Interquartile range (`q75 − q25`).
pub fn iqr(sample: &[f64]) -> f64 {
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    quantile_sorted(&xs, 0.75) - quantile_sorted(&xs, 0.25)
}

/// Five-number summary: min, q25, median, q75, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNum {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes the five-number summary of a sample.
pub fn five_num(sample: &[f64]) -> FiveNum {
    let mut xs = sample.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    FiveNum {
        min: xs[0],
        q25: quantile_sorted(&xs, 0.25),
        median: quantile_sorted(&xs, 0.5),
        q75: quantile_sorted(&xs, 0.75),
        max: xs[xs.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn extremes() {
        let xs = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 9.0);
    }

    #[test]
    fn singleton() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
        let f = five_num(&[7.0]);
        assert_eq!(f.min, 7.0);
        assert_eq!(f.max, 7.0);
        assert_eq!(f.median, 7.0);
    }

    #[test]
    fn interpolation_matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25) - 1.75).abs() < 1e-12);
        // numpy.percentile([1,2,3,4], 75) == 3.25
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.75) - 3.25).abs() < 1e-12);
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        assert!((iqr(&xs) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn five_num_ordering_invariant() {
        let xs: Vec<f64> = (0..50).map(|i| ((i * 37) % 50) as f64).collect();
        let f = five_num(&xs);
        assert!(f.min <= f.q25 && f.q25 <= f.median && f.median <= f.q75 && f.q75 <= f.max);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        quantile(&[], 0.5);
    }
}
