//! Sequential stopping rules for adaptive Monte-Carlo trial budgets.
//!
//! Every estimator in this workspace used to burn a fixed trial count
//! whether its confidence interval was already tight or still useless.
//! This module provides the standard alternative from the experimental
//! literature — *sequential stopping*: keep sampling until the CI
//! half-width crosses a requested precision, subject to a minimum-sample
//! floor (so the normal approximation is valid) and a hard cap (so a
//! heavy-tailed instance cannot run forever).
//!
//! Three pieces:
//!
//! * [`Precision`] — the rule itself: an absolute or relative half-width
//!   target at a confidence level, plus the floor and cap.
//! * [`SequentialCi`] — a reusable accumulator pairing a [`Summary`] with
//!   a `Precision`; push observations, ask [`SequentialCi::decision`].
//! * [`Trials`] — the budget type estimator entry points accept:
//!   [`Trials::Fixed`] (the classical flat count) or [`Trials::Adaptive`]
//!   (a `Precision`).
//!
//! ## Determinism
//!
//! The rule is a pure function of the observed sample prefix: given the
//! same observations in the same (index) order, [`Precision::satisfied_by`]
//! and [`Precision::next_wave`] always answer the same. Callers that
//! dispatch trials in waves and evaluate the rule only at wave boundaries
//! (see `mrw_par::par_map_chunks_with`) therefore consume a trial count
//! that depends only on the rule and the per-index sample values — never
//! on thread count or scheduling.

use crate::ci::{normal_ci, z_quantile, ConfidenceInterval};
use crate::summary::Summary;

/// The half-width target of a [`Precision`] rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecisionTarget {
    /// Stop when the CI half-width is at most this many absolute units
    /// (rounds, steps, …).
    Absolute(f64),
    /// Stop when the CI half-width is at most this fraction of the point
    /// estimate's magnitude (e.g. `0.05` = ±5%).
    Relative(f64),
}

/// A sequential stopping rule: sample until the normal-approximation CI
/// half-width at [`confidence`](Precision::confidence) crosses the
/// [`target`](Precision::target), but never before
/// [`min_trials`](Precision::min_trials) observations (the normal
/// approximation needs a floor) and never beyond
/// [`max_trials`](Precision::max_trials) (heavy-tailed instances must
/// terminate).
///
/// ```
/// use mrw_stats::precision::Precision;
/// use mrw_stats::Summary;
///
/// let rule = Precision::relative(0.5).with_min_trials(4).with_max_trials(100);
/// let tight = Summary::from_slice(&[10.0, 10.1, 9.9, 10.0]);
/// let loose = Summary::from_slice(&[1.0, 30.0, 2.0, 40.0]);
/// assert!(rule.satisfied_by(&tight));
/// assert!(!rule.satisfied_by(&loose));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precision {
    /// Absolute or relative half-width target.
    pub target: PrecisionTarget,
    /// Confidence level in (0, 1) for the interval, e.g. `0.95`.
    pub confidence: f64,
    /// Minimum observations before the rule may fire. The default of 32
    /// matches the floor `mrw_stats::ci` documents for the normal
    /// approximation on cover-time samples.
    pub min_trials: usize,
    /// Hard cap on observations; the rule reports
    /// [`Decision::CapExhausted`] there even if the target was missed.
    pub max_trials: usize,
}

/// Default minimum-sample floor (see [`Precision::min_trials`]).
pub const DEFAULT_MIN_TRIALS: usize = 32;

/// Default hard trial cap (see [`Precision::max_trials`]).
pub const DEFAULT_MAX_TRIALS: usize = 4096;

impl Precision {
    /// Rule targeting an absolute half-width `h`, at 95% confidence with
    /// the default floor and cap.
    ///
    /// # Panics
    /// If `h` is not positive and finite.
    pub fn absolute(h: f64) -> Self {
        assert!(h > 0.0 && h.is_finite(), "absolute precision {h} invalid");
        Precision {
            target: PrecisionTarget::Absolute(h),
            confidence: 0.95,
            min_trials: DEFAULT_MIN_TRIALS,
            max_trials: DEFAULT_MAX_TRIALS,
        }
    }

    /// Rule targeting a relative half-width `r` (fraction of the mean's
    /// magnitude), at 95% confidence with the default floor and cap.
    ///
    /// # Panics
    /// If `r` is not positive and finite.
    pub fn relative(r: f64) -> Self {
        assert!(r > 0.0 && r.is_finite(), "relative precision {r} invalid");
        Precision {
            target: PrecisionTarget::Relative(r),
            confidence: 0.95,
            min_trials: DEFAULT_MIN_TRIALS,
            max_trials: DEFAULT_MAX_TRIALS,
        }
    }

    /// Sets the confidence level.
    ///
    /// # Panics
    /// If `level` is outside (0, 1).
    pub fn with_confidence(mut self, level: f64) -> Self {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0,1), got {level}"
        );
        self.confidence = level;
        self
    }

    /// Sets the minimum-sample floor (clamped up to 2 — a half-width needs
    /// a variance estimate).
    pub fn with_min_trials(mut self, floor: usize) -> Self {
        self.min_trials = floor.max(2);
        if self.max_trials < self.min_trials {
            self.max_trials = self.min_trials;
        }
        self
    }

    /// Sets the hard trial cap.
    ///
    /// # Panics
    /// If `cap` is below the current floor.
    pub fn with_max_trials(mut self, cap: usize) -> Self {
        assert!(
            cap >= self.min_trials,
            "cap {cap} below the minimum-sample floor {}",
            self.min_trials
        );
        self.max_trials = cap;
        self
    }

    /// The half-width the rule demands for `summary`'s point estimate:
    /// the absolute target, or the relative target scaled by `|mean|`.
    pub fn demanded_half_width(&self, summary: &Summary) -> f64 {
        match self.target {
            PrecisionTarget::Absolute(h) => h,
            PrecisionTarget::Relative(r) => r * summary.mean().abs(),
        }
    }

    /// Whether `summary` already meets the precision target (floor
    /// included). A pure function of the summary — see the module docs'
    /// determinism contract.
    pub fn satisfied_by(&self, summary: &Summary) -> bool {
        if (summary.count() as usize) < self.min_trials {
            return false;
        }
        let half = z_quantile(self.confidence) * summary.std_err();
        // A zero-mean sample can never satisfy a relative target unless it
        // is exactly degenerate (half == 0 == demanded).
        half <= self.demanded_half_width(summary)
    }

    /// Wave schedule: how many more trials to dispatch after `consumed`
    /// have been observed without the rule firing. The first wave is the
    /// floor; each later wave is half the consumed count (geometric ×1.5
    /// growth, the standard sequential-sampling doubling trick — at most
    /// ~50% overshoot past the stopping point while keeping the number of
    /// rule evaluations logarithmic in the cap). Always clamped so the
    /// total never exceeds [`max_trials`](Precision::max_trials); returns
    /// 0 once the cap is reached.
    pub fn next_wave(&self, consumed: usize) -> usize {
        if consumed >= self.max_trials {
            return 0;
        }
        let want = if consumed == 0 {
            self.min_trials
        } else {
            (consumed / 2).max(1)
        };
        want.min(self.max_trials - consumed)
    }

    /// Runs the whole sequential loop serially: draws observation `t`
    /// from `sample` wave by wave ([`next_wave`](Self::next_wave)),
    /// re-evaluating the rule between waves, until it fires or the cap is
    /// hit. The single-threaded counterpart of
    /// `mrw_par::par_map_chunks_with` — estimators whose trials are cheap
    /// enough not to parallelize (pursuit games, partial-cover profiles)
    /// share this one loop instead of hand-rolling it. `sample(t)` must
    /// be a pure function of `t` for the consumed count to be
    /// reproducible.
    ///
    /// ```
    /// use mrw_stats::precision::Precision;
    ///
    /// let rule = Precision::absolute(0.5).with_min_trials(4).with_max_trials(64);
    /// let summary = rule.run_serial(|t| (t % 2) as f64); // tight sample
    /// assert!(rule.satisfied_by(&summary));
    /// assert!(summary.count() < 64);
    /// ```
    pub fn run_serial(&self, mut sample: impl FnMut(usize) -> f64) -> Summary {
        let mut seq = SequentialCi::new(*self);
        loop {
            let wave = self.next_wave(seq.consumed());
            if wave == 0 {
                break;
            }
            for _ in 0..wave {
                let t = seq.consumed();
                seq.push(sample(t));
            }
            if seq.decision() == Decision::PrecisionReached {
                break;
            }
        }
        seq.into_summary()
    }
}

/// Why a sequential run stopped (or why it hasn't).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep sampling: the target is not met and the cap is not reached.
    Continue,
    /// The precision target is met (at or above the floor).
    PrecisionReached,
    /// The cap was hit without meeting the target.
    CapExhausted,
}

/// A reusable sequential-CI accumulator: a [`Summary`] paired with the
/// [`Precision`] rule that decides when it has seen enough.
///
/// ```
/// use mrw_stats::precision::{Decision, Precision, SequentialCi};
///
/// let rule = Precision::absolute(0.9).with_min_trials(4).with_max_trials(64);
/// let mut seq = SequentialCi::new(rule);
/// // A nearly-constant sample: the rule fires right at the floor.
/// for x in [5.0, 5.1, 4.9, 5.0] {
///     seq.push(x);
/// }
/// assert_eq!(seq.decision(), Decision::PrecisionReached);
/// assert!(seq.ci().half_width() <= 0.9);
/// assert_eq!(seq.consumed(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SequentialCi {
    summary: Summary,
    rule: Precision,
}

impl SequentialCi {
    /// Creates an empty accumulator governed by `rule`.
    pub fn new(rule: Precision) -> Self {
        SequentialCi {
            summary: Summary::new(),
            rule,
        }
    }

    /// Rebuilds an accumulator around an already-summarized sample — the
    /// sufficient-statistics form. This is how a merged shard report
    /// re-enters the sequential rule: combine the shards' exact moments,
    /// view them as a [`Summary`], and ask [`decision`](Self::decision)
    /// whether the merged sample certifies the rule's half-width.
    pub fn from_summary(rule: Precision, summary: Summary) -> Self {
        SequentialCi { summary, rule }
    }

    /// Merges another accumulator's sample into this one (Chan's exact
    /// summary merge). Both sides must be governed by the same rule, so
    /// the merged decision is well-defined.
    ///
    /// # Panics
    /// If the rules differ.
    pub fn merge(&mut self, other: &SequentialCi) {
        assert!(
            self.rule == other.rule,
            "merging SequentialCi under different rules"
        );
        self.summary.merge(&other.summary);
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.summary.push(x);
    }

    /// The rule's verdict on the sample so far.
    pub fn decision(&self) -> Decision {
        if self.rule.satisfied_by(&self.summary) {
            Decision::PrecisionReached
        } else if self.summary.count() as usize >= self.rule.max_trials {
            Decision::CapExhausted
        } else {
            Decision::Continue
        }
    }

    /// Whether sampling should stop (for either reason).
    pub fn is_done(&self) -> bool {
        self.decision() != Decision::Continue
    }

    /// Observations consumed so far.
    pub fn consumed(&self) -> usize {
        self.summary.count() as usize
    }

    /// The accumulated sample summary.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// The governing rule.
    pub fn rule(&self) -> &Precision {
        &self.rule
    }

    /// The CI at the rule's confidence level around the current mean.
    pub fn ci(&self) -> ConfidenceInterval {
        normal_ci(&self.summary, self.rule.confidence)
    }

    /// Consumes the accumulator, returning the sample summary.
    pub fn into_summary(self) -> Summary {
        self.summary
    }
}

/// A Monte-Carlo trial budget: how many trials an estimator should run.
///
/// ```
/// use mrw_stats::precision::{Precision, Trials};
///
/// let fixed = Trials::Fixed(64);
/// let adaptive = Trials::Adaptive(Precision::relative(0.05).with_max_trials(1024));
/// assert_eq!(fixed.cap(), 64);
/// assert_eq!(adaptive.cap(), 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trials {
    /// Run exactly this many trials.
    Fixed(usize),
    /// Run until the precision rule fires (or its cap is hit).
    Adaptive(Precision),
}

impl Trials {
    /// The most trials this budget can consume: the fixed count, or the
    /// adaptive rule's hard cap.
    pub fn cap(&self) -> usize {
        match self {
            Trials::Fixed(n) => *n,
            Trials::Adaptive(p) => p.max_trials,
        }
    }

    /// The adaptive rule, if this budget is adaptive.
    pub fn precision(&self) -> Option<&Precision> {
        match self {
            Trials::Fixed(_) => None,
            Trials::Adaptive(p) => Some(p),
        }
    }
}

impl From<usize> for Trials {
    fn from(n: usize) -> Self {
        Trials::Fixed(n)
    }
}

impl From<Precision> for Trials {
    fn from(p: Precision) -> Self {
        Trials::Adaptive(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_blocks_early_stop() {
        // Constant sample: half-width is 0 immediately, but the floor
        // holds the rule back until min_trials.
        let rule = Precision::absolute(1.0)
            .with_min_trials(8)
            .with_max_trials(64);
        let mut s = Summary::new();
        for i in 0..8 {
            assert!(!rule.satisfied_by(&s), "fired at count {i}");
            s.push(7.0);
        }
        assert!(rule.satisfied_by(&s));
    }

    #[test]
    fn absolute_target_uses_half_width() {
        let rule = Precision::absolute(0.5)
            .with_min_trials(2)
            .with_max_trials(1000);
        // std_err of {0,1}*500 alternating is tiny; half-width < 0.5.
        let xs: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        assert!(rule.satisfied_by(&Summary::from_slice(&xs)));
        // Two wildly different points: huge half-width.
        assert!(!rule.satisfied_by(&Summary::from_slice(&[0.0, 100.0])));
    }

    #[test]
    fn relative_target_scales_with_mean() {
        let rule = Precision::relative(0.1)
            .with_min_trials(2)
            .with_max_trials(1000);
        // Same spread, mean 1000 → relative half-width tiny.
        let big = Summary::from_slice(&[999.0, 1001.0, 1000.0, 1000.0]);
        assert!(rule.satisfied_by(&big));
        // Same spread, mean 1 → relative half-width huge.
        let small = Summary::from_slice(&[0.0, 2.0, 1.0, 1.0]);
        assert!(!rule.satisfied_by(&small));
    }

    #[test]
    fn zero_mean_relative_never_fires_on_noise() {
        let rule = Precision::relative(0.05)
            .with_min_trials(2)
            .with_max_trials(64);
        let s = Summary::from_slice(&[-1.0, 1.0, -1.0, 1.0]);
        assert!(!rule.satisfied_by(&s));
    }

    #[test]
    fn wave_schedule_floors_then_grows_then_caps() {
        let rule = Precision::absolute(0.1)
            .with_min_trials(16)
            .with_max_trials(100);
        assert_eq!(rule.next_wave(0), 16);
        assert_eq!(rule.next_wave(16), 8);
        assert_eq!(rule.next_wave(24), 12);
        assert_eq!(rule.next_wave(96), 4); // clamped to the cap
        assert_eq!(rule.next_wave(100), 0);
        assert_eq!(rule.next_wave(200), 0);
    }

    #[test]
    fn wave_schedule_never_exceeds_cap() {
        let rule = Precision::absolute(1.0)
            .with_min_trials(32)
            .with_max_trials(333);
        let mut consumed = 0;
        loop {
            let w = rule.next_wave(consumed);
            if w == 0 {
                break;
            }
            consumed += w;
            assert!(consumed <= 333, "overran the cap at {consumed}");
        }
        assert_eq!(consumed, 333);
    }

    #[test]
    fn sequential_ci_cap_exhaustion() {
        let rule = Precision::absolute(1e-12)
            .with_min_trials(2)
            .with_max_trials(5);
        let mut seq = SequentialCi::new(rule);
        for i in 0..5 {
            assert_eq!(seq.decision(), Decision::Continue, "at {i}");
            seq.push(i as f64 * 10.0);
        }
        assert_eq!(seq.decision(), Decision::CapExhausted);
        assert!(seq.is_done());
        assert_eq!(seq.consumed(), 5);
    }

    #[test]
    fn sequential_ci_reports_interval_at_rule_confidence() {
        let rule = Precision::absolute(10.0)
            .with_confidence(0.99)
            .with_min_trials(4);
        let mut seq = SequentialCi::new(rule);
        for x in [1.0, 2.0, 3.0, 4.0] {
            seq.push(x);
        }
        assert_eq!(seq.ci().level, 0.99);
        assert!((seq.ci().point - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sufficient_stats_form_merges_like_one_stream() {
        // Two partial accumulators (e.g. two shards' moments viewed as
        // summaries) merge into the same decision a single stream reaches.
        let rule = Precision::absolute(0.5)
            .with_min_trials(4)
            .with_max_trials(64);
        let xs: Vec<f64> = (0..16).map(|i| 10.0 + (i % 2) as f64).collect();
        let mut whole = SequentialCi::new(rule);
        for &x in &xs {
            whole.push(x);
        }
        let a = SequentialCi::from_summary(rule, Summary::from_slice(&xs[..7]));
        let mut b = SequentialCi::from_summary(rule, Summary::from_slice(&xs[7..]));
        b.merge(&a);
        assert_eq!(b.consumed(), whole.consumed());
        assert_eq!(b.decision(), whole.decision());
        assert_eq!(b.decision(), Decision::PrecisionReached);
        assert!((b.ci().half_width() - whole.ci().half_width()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different rules")]
    fn merging_under_different_rules_rejected() {
        let mut a = SequentialCi::new(Precision::absolute(1.0));
        let b = SequentialCi::new(Precision::relative(0.1));
        a.merge(&b);
    }

    #[test]
    fn min_floor_clamps_to_two() {
        let rule = Precision::absolute(1.0).with_min_trials(0);
        assert_eq!(rule.min_trials, 2);
    }

    #[test]
    #[should_panic(expected = "below the minimum-sample floor")]
    fn cap_below_floor_rejected() {
        let _ = Precision::absolute(1.0)
            .with_min_trials(64)
            .with_max_trials(8);
    }

    #[test]
    fn trials_conversions() {
        assert_eq!(Trials::from(7usize), Trials::Fixed(7));
        let p = Precision::relative(0.1);
        assert_eq!(Trials::from(p).precision(), Some(&p));
        assert_eq!(Trials::Fixed(3).precision(), None);
    }
}
