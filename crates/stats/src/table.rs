//! Result-table rendering in ASCII, Markdown, and CSV.
//!
//! The CLI regenerates the paper's Table 1 and per-theorem tables; this
//! module owns the layout so every experiment prints consistently.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple table builder: fixed header, rows of strings, per-column
/// alignment inferred from the header unless overridden.
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers; all columns default to
    /// right alignment except the first, which is left-aligned.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        let mut aligns = vec![Align::Right; headers.len()];
        aligns[0] = Align::Left;
        Table {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides the alignment of column `idx`.
    pub fn align(mut self, idx: usize, a: Align) -> Self {
        assert!(idx < self.headers.len(), "column {idx} out of range");
        self.aligns[idx] = a;
        self
    }

    /// Appends a row; must match the header arity.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let fill = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(fill)),
            Align::Right => format!("{}{cell}", " ".repeat(fill)),
        }
    }

    /// Renders an ASCII table with a header rule.
    pub fn render_ascii(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "== {t} ==");
        }
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&w)
            .zip(&self.aligns)
            .map(|((h, &wi), &a)| Self::pad(h, wi, a))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let rule: Vec<String> = w.iter().map(|&wi| "-".repeat(wi)).collect();
        let _ = writeln!(out, "{}", rule.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&w)
                .zip(&self.aligns)
                .map(|((c, &wi), &a)| Self::pad(c, wi, a))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        out
    }

    /// Renders a GitHub-flavoured Markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "### {t}\n");
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":---",
                Align::Right => "---:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn render_csv(&self) -> String {
        fn esc(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float compactly for table cells: integers without decimals,
/// large magnitudes in scientific notation, otherwise 3 significant
/// decimals.
pub fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a >= 1e7 {
        format!("{x:.3e}")
    } else if (x.round() - x).abs() < 1e-9 && a < 1e7 {
        format!("{}", x.round() as i64)
    } else if a >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["graph", "n", "C(G)"]).with_title("demo");
        t.push_row(vec!["cycle", "128", "8192.0"]);
        t.push_row(vec!["complete", "128", "621.3"]);
        t
    }

    #[test]
    fn ascii_layout() {
        let s = sample().render_ascii();
        assert!(s.contains("== demo =="));
        assert!(s.contains("graph"));
        // Right alignment: number should be preceded by spaces up to width.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
        // lines[0] is the title, lines[1] the header, lines[2] the rule.
        assert!(lines[2].contains("---"));
    }

    #[test]
    fn markdown_layout() {
        let s = sample().render_markdown();
        assert!(s.contains("| graph | n | C(G) |"));
        assert!(s.contains("| :--- | ---: | ---: |"));
        assert!(s.contains("| cycle | 128 | 8192.0 |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["x,y", "say \"hi\""]);
        let s = t.render_csv();
        assert!(s.contains("\"x,y\""));
        assert!(s.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn fmt_num_modes() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(4.5678), "4.568");
        assert_eq!(fmt_num(1234.5), "1234.5");
        assert!(fmt_num(1.0e9).contains('e'));
        assert_eq!(fmt_num(f64::INFINITY), "inf");
    }

    #[test]
    fn empty_and_len() {
        let t = Table::new(vec!["h"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let s = sample();
        assert_eq!(s.len(), 2);
    }
}
