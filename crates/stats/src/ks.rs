//! Two-sample Kolmogorov–Smirnov test.
//!
//! Several claims in this project are *distributional identities*, not
//! just equalities of means — e.g. Theorem 24's projected torus walk *is*
//! the lazy cycle walk, and the two k-walk stepping disciplines define
//! the same process. Comparing means (a t-test) would pass even if the
//! shapes differed; the KS statistic `D = sup_x |F̂₁(x) − F̂₂(x)|`
//! compares entire empirical CDFs and is distribution-free under the
//! null.
//!
//! The p-value uses the asymptotic Kolmogorov distribution
//! `Q(λ) = 2·Σ_{j≥1} (−1)^{j−1} e^{−2j²λ²}` with the standard
//! finite-sample effective size `n_e = n₁n₂/(n₁+n₂)` and the
//! Stephens correction `λ = (√n_e + 0.12 + 0.11/√n_e)·D` — accurate to a
//! few percent for `n_e ≥ 4`, which is all a Monte-Carlo harness needs.

/// Result of a two-sample KS test.
#[derive(Debug, Clone, Copy)]
pub struct KsTest {
    /// KS statistic `D = sup |F̂₁ − F̂₂|`.
    pub statistic: f64,
    /// Asymptotic p-value for the two-sided test.
    pub p_value: f64,
    /// Effective sample size `n₁n₂/(n₁+n₂)`.
    pub effective_n: f64,
}

impl KsTest {
    /// Convenience: reject the null "same distribution" at level `alpha`?
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample Kolmogorov–Smirnov test. Inputs need not be sorted; NaNs
/// are rejected.
///
/// ```
/// use mrw_stats::ks_two_sample;
///
/// let a = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let b = [1.1, 2.1, 2.9, 4.2, 4.8];
/// let t = ks_two_sample(&a, &b);
/// assert!(!t.rejects_at(0.05)); // same shape — no rejection
/// ```
///
/// # Panics
/// If either sample is empty or contains NaN.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> KsTest {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs nonempty samples");
    let mut xs = a.to_vec();
    let mut ys = b.to_vec();
    for v in xs.iter().chain(ys.iter()) {
        assert!(!v.is_nan(), "KS sample contains NaN");
    }
    xs.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));
    ys.sort_by(|p, q| p.partial_cmp(q).expect("no NaN"));

    let (n1, n2) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < n1 && j < n2 {
        let x = xs[i];
        let y = ys[j];
        let t = x.min(y);
        // Advance past ties in both samples together so the CDF gap is
        // evaluated between jump points, never mid-jump.
        while i < n1 && xs[i] <= t {
            i += 1;
        }
        while j < n2 && ys[j] <= t {
            j += 1;
        }
        let f1 = i as f64 / n1 as f64;
        let f2 = j as f64 / n2 as f64;
        d = d.max((f1 - f2).abs());
    }

    let ne = (n1 as f64 * n2 as f64) / (n1 + n2) as f64;
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    KsTest {
        statistic: d,
        p_value: kolmogorov_q(lambda),
        effective_n: ne,
    }
}

/// The Kolmogorov survival function
/// `Q(λ) = 2·Σ_{j≥1} (−1)^{j−1} e^{−2j²λ²}`, clamped to `[0, 1]`.
pub fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0f64;
    let mut sign = 1.0f64;
    for j in 1..=100u32 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_stream(seed: u64, n: usize, scale: f64, shift: f64) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 * scale + shift
            })
            .collect()
    }

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let t = ks_two_sample(&a, &a);
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = vec![0.0, 1.0, 2.0];
        let b = vec![10.0, 11.0, 12.0];
        let t = ks_two_sample(&a, &b);
        assert_eq!(t.statistic, 1.0);
        assert!(t.p_value < 0.1);
    }

    #[test]
    fn same_distribution_not_rejected() {
        let a = lcg_stream(1, 500, 1.0, 0.0);
        let b = lcg_stream(2, 500, 1.0, 0.0);
        let t = ks_two_sample(&a, &b);
        assert!(
            !t.rejects_at(0.01),
            "false rejection: D = {}, p = {}",
            t.statistic,
            t.p_value
        );
    }

    #[test]
    fn shifted_distribution_rejected() {
        let a = lcg_stream(1, 500, 1.0, 0.0);
        let b = lcg_stream(2, 500, 1.0, 0.35);
        let t = ks_two_sample(&a, &b);
        assert!(
            t.rejects_at(0.001),
            "missed a 0.35 shift: p = {}",
            t.p_value
        );
    }

    #[test]
    fn scale_difference_rejected_even_with_equal_means() {
        // Mean-matched but differently spread: a t-test would pass, KS
        // must not.
        let a = lcg_stream(3, 800, 1.0, 0.0); // U[0, 1]
        let b = lcg_stream(4, 800, 3.0, -1.0); // U[−1, 2], same mean 0.5
        let t = ks_two_sample(&a, &b);
        assert!(
            t.rejects_at(0.001),
            "missed a scale change: p = {}",
            t.p_value
        );
    }

    #[test]
    fn handles_ties_and_unequal_sizes() {
        let a = vec![1.0, 1.0, 1.0, 2.0, 2.0];
        let b = vec![1.0, 2.0, 2.0];
        let t = ks_two_sample(&a, &b);
        // F̂₁ jumps to 0.6 at 1, F̂₂ to 1/3: D = 0.6 − 1/3.
        assert!((t.statistic - (0.6 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn kolmogorov_q_reference_values() {
        // Known quantiles: Q(1.3581) ≈ 0.05, Q(1.6276) ≈ 0.01.
        assert!((kolmogorov_q(1.3581) - 0.05).abs() < 0.002);
        assert!((kolmogorov_q(1.6276) - 0.01).abs() < 0.001);
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(5.0) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_sample_rejected() {
        ks_two_sample(&[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        ks_two_sample(&[f64::NAN], &[1.0]);
    }
}
