//! Confidence intervals for Monte-Carlo estimates.
//!
//! Cover-time samples are heavy-tailed but have finite variance on finite
//! graphs, so the normal approximation is adequate at the trial counts we
//! use (≥ 32). For small samples or strongly skewed statistics (e.g. the
//! ratio estimator behind the speed-up `S^k`), a percentile bootstrap is
//! provided; it needs an external source of randomness which the caller
//! supplies as a simple `u64 -> u64` mixing function to keep this crate
//! dependency-free.

use crate::summary::Summary;

/// A two-sided confidence interval `[lo, hi]` around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean or ratio of means).
    pub point: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level in (0, 1), e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Half-width relative to the point estimate.
    pub fn relative_half_width(&self) -> f64 {
        self.half_width() / self.point.abs()
    }

    /// Whether `x` falls inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Formats as `point [lo, hi]` with the given precision.
    pub fn display(&self, decimals: usize) -> String {
        format!(
            "{:.d$} [{:.d$}, {:.d$}]",
            self.point,
            self.lo,
            self.hi,
            d = decimals
        )
    }
}

/// Two-sided standard-normal quantile `z` such that `P(|Z| ≤ z) = level`.
///
/// Uses the Acklam rational approximation of the inverse normal CDF
/// (max absolute error ≈ 1.15e-9), which is far more accuracy than a
/// Monte-Carlo CI needs.
pub fn z_quantile(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1), got {level}"
    );
    // Two-sided: find z with Φ(z) = (1 + level) / 2.
    inverse_normal_cdf((1.0 + level) / 2.0)
}

/// Inverse of the standard normal CDF (Acklam's algorithm).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.50662827745924e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Normal-approximation CI for the mean of a summarized sample.
pub fn normal_ci(summary: &Summary, level: f64) -> ConfidenceInterval {
    let z = z_quantile(level);
    let half = z * summary.std_err();
    ConfidenceInterval {
        point: summary.mean(),
        lo: summary.mean() - half,
        hi: summary.mean() + half,
        level,
    }
}

/// Normal-approximation CI for a ratio of two independent means `a / b`
/// using the delta method: `Var(a/b) ≈ (1/b²)Var(a) + (a²/b⁴)Var(b)` with
/// per-mean variances `s²/n`.
///
/// This is how the speed-up `S^k = C / C^k` gets its error bars.
pub fn ratio_ci(numer: &Summary, denom: &Summary, level: f64) -> ConfidenceInterval {
    let a = numer.mean();
    let b = denom.mean();
    assert!(b != 0.0, "ratio_ci: denominator mean is zero");
    let va = numer.std_err().powi(2);
    let vb = denom.std_err().powi(2);
    let point = a / b;
    let var = va / (b * b) + (a * a) * vb / (b * b * b * b);
    let half = z_quantile(level) * var.sqrt();
    ConfidenceInterval {
        point,
        lo: point - half,
        hi: point + half,
        level,
    }
}

/// SplitMix64 step — the mixing function used by the bootstrap resampler.
/// Public so tests and callers can share the identical stream.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Percentile-bootstrap CI for the mean of `sample`.
///
/// Draws `resamples` bootstrap replicates using an internal SplitMix64
/// stream seeded by `seed`; deterministic for a fixed seed.
pub fn bootstrap_mean_ci(
    sample: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!sample.is_empty(), "bootstrap on empty sample");
    assert!(resamples >= 2, "need at least 2 resamples");
    let n = sample.len();
    let mut state = seed ^ 0xdeadbeefcafef00d;
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            let idx = (splitmix64(&mut state) % n as u64) as usize;
            acc += sample[idx];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("NaN in bootstrap means"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    let point = sample.iter().sum::<f64>() / n as f64;
    ConfidenceInterval {
        point,
        lo: means[lo_idx],
        hi: means[hi_idx],
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_quantile_standard_values() {
        assert!((z_quantile(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_quantile(0.99) - 2.575829).abs() < 1e-4);
        assert!((z_quantile(0.6827) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn inverse_normal_cdf_symmetry() {
        for p in [0.001, 0.01, 0.1, 0.25, 0.4] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-8, "asymmetry at p={p}: {lo} vs {hi}");
        }
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn z_quantile_rejects_bad_level() {
        z_quantile(1.0);
    }

    #[test]
    fn normal_ci_brackets_mean() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let ci = normal_ci(&s, 0.95);
        assert!(ci.contains(3.0));
        assert!(ci.lo < 3.0 && ci.hi > 3.0);
        assert!((ci.point - 3.0).abs() < 1e-12);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let ci95 = normal_ci(&s, 0.95);
        let ci99 = normal_ci(&s, 0.99);
        assert!(ci99.half_width() > ci95.half_width());
    }

    #[test]
    fn ratio_ci_sane() {
        let a = Summary::from_slice(&[10.0, 11.0, 9.0, 10.5, 9.5]);
        let b = Summary::from_slice(&[2.0, 2.1, 1.9, 2.05, 1.95]);
        let ci = ratio_ci(&a, &b, 0.95);
        assert!(ci.contains(5.0));
        assert!(ci.point > 4.5 && ci.point < 5.5);
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets() {
        let sample: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ci1 = bootstrap_mean_ci(&sample, 0.95, 500, 42);
        let ci2 = bootstrap_mean_ci(&sample, 0.95, 500, 42);
        assert_eq!(ci1, ci2);
        assert!(ci1.contains(4.5));
        let ci3 = bootstrap_mean_ci(&sample, 0.95, 500, 43);
        assert!(ci3.lo != ci1.lo || ci3.hi != ci1.hi);
    }

    #[test]
    fn bootstrap_constant_sample_degenerate() {
        let ci = bootstrap_mean_ci(&[7.0; 20], 0.95, 100, 1);
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
        assert_eq!(ci.point, 7.0);
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut s1 = 7u64;
        let mut s2 = 7u64;
        for _ in 0..10 {
            assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        }
    }
}
