//! Streaming statistics, confidence intervals, regression, and table
//! rendering for the `many-walks` project.
//!
//! Every estimator in the workspace is a Monte-Carlo estimator: we run many
//! independent trials of a random process (a cover time, a hitting time) and
//! summarize the sample. This crate provides the numerically careful pieces
//! of that pipeline:
//!
//! * [`Summary`] — single-pass Welford accumulation of count / mean /
//!   variance / min / max, with exact merging so per-thread partial summaries
//!   can be combined deterministically.
//! * [`ci`] — normal-approximation and bootstrap confidence intervals.
//! * [`quantile`] — order statistics on sample vectors.
//! * [`Histogram`] — linear- and log-bucketed histograms for cover-time
//!   distributions.
//! * [`regression`] — ordinary least squares and log–log growth-exponent
//!   fitting, used to verify asymptotic laws such as `C(cycle) ~ n²/2`.
//! * [`harmonic`] — harmonic numbers `H_n` appearing in Matthews' bound.
//! * [`Table`] — ASCII / Markdown / CSV rendering of result tables in the
//!   layout of the paper's Table 1.
//! * [`ladder`] — geometric parameter ladders for sweeps over `n` and `k`.
//! * [`precision`] — sequential stopping rules ([`Precision`], [`Trials`])
//!   for adaptive trial budgets: sample until the CI half-width crosses a
//!   requested target instead of running a fixed count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod harmonic;
pub mod histogram;
pub mod ks;
pub mod ladder;
pub mod moments;
pub mod precision;
pub mod quantile;
pub mod regression;
pub mod summary;
pub mod table;

pub use ci::ConfidenceInterval;
pub use histogram::Histogram;
pub use ks::{kolmogorov_q, ks_two_sample, KsTest};
pub use moments::IntMoments;
pub use precision::{Precision, SequentialCi, Trials};
pub use regression::{LinearFit, PowerLawFit};
pub use summary::Summary;
pub use table::{Align, Table};
