//! Exact sufficient statistics for integer-valued samples.
//!
//! Every Monte-Carlo trial in this workspace produces an *integer* — a
//! round count, a step count, a catch time. [`IntMoments`] accumulates the
//! sufficient statistics of such a sample (`count`, `Σx`, `Σx²`, `min`,
//! `max`) in exact integer arithmetic, which buys a property a floating
//! accumulator cannot offer: [`merge`](IntMoments::merge) is exactly
//! associative and commutative. Accumulating trials `0..m` and `m..n` in
//! two processes and merging is **bit-for-bit identical** to one pass over
//! `0..n` — the foundation of the shard protocol in `mrw-core`'s query
//! layer. The derived floating-point views ([`mean`](IntMoments::mean),
//! [`variance`](IntMoments::variance), [`summary`](IntMoments::summary))
//! are pure functions of the integer state, so they too are identical
//! however the sample was partitioned.
//!
//! Contrast with [`Summary`]: Welford's algorithm updates
//! a floating mean and `M2` per observation, so its merge (Chan's variant)
//! agrees with a sequential pass only up to rounding — fine for display,
//! fatal for a byte-identical shard merge.
//!
//! ## Range
//!
//! The second moment is derived from the exact integer `n·Σx² − (Σx)²`,
//! held in `u128`. With samples bounded by `2^40` and sample counts
//! bounded by `2^24` (far beyond any trial cap in this workspace) the
//! intermediate stays below `2^128`; larger inputs would wrap in debug
//! builds and are outside the supported domain.

use crate::summary::Summary;

/// Exact streaming moments of a sample of `u64` observations.
///
/// ```
/// use mrw_stats::IntMoments;
///
/// let mut a = IntMoments::new();
/// let mut b = IntMoments::new();
/// let mut whole = IntMoments::new();
/// for (i, x) in [3u64, 1, 4, 1, 5, 9, 2, 6].into_iter().enumerate() {
///     if i < 3 { a.push(x) } else { b.push(x) }
///     whole.push(x);
/// }
/// a.merge(&b);
/// assert_eq!(a, whole); // exact — not "close"
/// assert_eq!(a.count(), 8);
/// assert_eq!(a.min(), Some(1));
/// assert_eq!(a.max(), Some(9));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntMoments {
    count: u64,
    sum: u128,
    sum_sq: u128,
    /// `u64::MAX` when empty (identity of `min`).
    min: u64,
    /// `0` when empty (identity of `max`).
    max: u64,
}

impl IntMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        IntMoments {
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Reconstructs an accumulator from raw sufficient statistics — the
    /// fallible inverse of the accessors, used when deserializing a shard
    /// report. Rejects statistics inconsistent with *any* sample: an
    /// empty count with nonzero sums, `min > max`, `n·Σx² < (Σx)²`
    /// (violates Cauchy–Schwarz), or values so large the consistency
    /// check itself would overflow `u128` (outside the module's
    /// documented range, so they cannot have come from `push`).
    pub fn try_from_raw(
        count: u64,
        sum: u128,
        sum_sq: u128,
        min: u64,
        max: u64,
    ) -> Result<Self, String> {
        if count == 0 {
            if sum != 0 || sum_sq != 0 {
                return Err("empty sample with nonzero sums".into());
            }
            return Ok(IntMoments::new());
        }
        let lhs = (count as u128)
            .checked_mul(sum_sq)
            .ok_or("moments out of range: n·Σx² overflows u128")?;
        let rhs = sum
            .checked_mul(sum)
            .ok_or("moments out of range: (Σx)² overflows u128")?;
        if lhs < rhs {
            return Err("inconsistent moments: n·Σx² < (Σx)²".into());
        }
        if min > max {
            return Err(format!("min {min} > max {max}"));
        }
        Ok(IntMoments {
            count,
            sum,
            sum_sq,
            min,
            max,
        })
    }

    /// Panicking convenience over [`try_from_raw`](Self::try_from_raw)
    /// for statistics already known to be consistent.
    ///
    /// # Panics
    /// Whenever `try_from_raw` would return an error.
    pub fn from_raw(count: u64, sum: u128, sum_sq: u128, min: u64, max: u64) -> Self {
        match Self::try_from_raw(count, sum, sum_sq, min, max) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: u64) {
        self.count += 1;
        self.sum += x as u128;
        self.sum_sq += (x as u128) * (x as u128);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one — exactly associative and
    /// commutative (integer sums, integer min/max).
    pub fn merge(&mut self, other: &IntMoments) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum `Σx`.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact sum of squares `Σx²`.
    pub fn sum_sq(&self) -> u128 {
        self.sum_sq
    }

    /// Minimum observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sample mean `Σx / n` (0 when empty) — the correctly-rounded `f64`
    /// of the exact rational, identical however the sample was merged.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Centered second moment `M2 = Σ(x − x̄)² = (n·Σx² − (Σx)²) / n`,
    /// derived from the exact integer numerator.
    pub fn m2(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let num = (self.count as u128) * self.sum_sq - self.sum * self.sum;
        num as f64 / self.count as f64
    }

    /// Unbiased sample variance (`M2 / (n − 1)`). Zero when `n < 2`.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let num = (self.count as u128) * self.sum_sq - self.sum * self.sum;
        num as f64 / (self.count as f64 * (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`s / √n`).
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// A [`Summary`] view of the same sample (for CI construction and
    /// [`Precision`](crate::Precision) rule evaluation). A pure function
    /// of the integer state: two partitions of the same sample produce
    /// bit-identical summaries.
    pub fn summary(&self) -> Summary {
        Summary::from_parts(
            self.count,
            self.mean(),
            self.m2(),
            self.min().map_or(f64::INFINITY, |m| m as f64),
            self.max().map_or(f64::NEG_INFINITY, |m| m as f64),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_identity() {
        let mut a = IntMoments::new();
        let mut b = IntMoments::new();
        b.push(7);
        let before = b;
        b.merge(&IntMoments::new());
        assert_eq!(b, before);
        a.merge(&before);
        assert_eq!(a, before);
        assert_eq!(IntMoments::new().min(), None);
        assert_eq!(IntMoments::new().mean(), 0.0);
    }

    #[test]
    fn matches_welford_summary_closely() {
        let xs: Vec<u64> = (0..500).map(|i| (i * i * 37) % 1000).collect();
        let mut m = IntMoments::new();
        let mut s = Summary::new();
        for &x in &xs {
            m.push(x);
            s.push(x as f64);
        }
        assert_eq!(m.count(), s.count());
        assert!((m.mean() - s.mean()).abs() < 1e-9);
        assert!((m.variance() - s.variance()).abs() < 1e-6);
        assert_eq!(m.min(), Some(0));
        assert_eq!(m.summary().min(), s.min());
        assert_eq!(m.summary().max(), s.max());
    }

    #[test]
    fn any_partition_merges_bit_identically() {
        let xs: Vec<u64> = (0..257).map(|i| (i * 2654435761u64) >> 40).collect();
        let mut whole = IntMoments::new();
        for &x in &xs {
            whole.push(x);
        }
        for split in [1usize, 13, 128, 256] {
            let mut a = IntMoments::new();
            let mut b = IntMoments::new();
            for &x in &xs[..split] {
                a.push(x);
            }
            for &x in &xs[split..] {
                b.push(x);
            }
            // Both orders: commutative.
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert_eq!(ab, whole);
            assert_eq!(ba, whole);
            assert_eq!(ab.summary(), whole.summary());
        }
    }

    #[test]
    fn from_raw_round_trips() {
        let mut m = IntMoments::new();
        for x in [5u64, 10, 15] {
            m.push(x);
        }
        let r = IntMoments::from_raw(m.count(), m.sum(), m.sum_sq(), 5, 15);
        assert_eq!(r, m);
        assert_eq!(
            IntMoments::from_raw(0, 0, 0, u64::MAX, 0),
            IntMoments::new()
        );
    }

    #[test]
    #[should_panic(expected = "inconsistent moments")]
    fn from_raw_rejects_impossible_moments() {
        // n = 2, Σx = 10, Σx² = 40 < 100/2 · … — 2·40 < 100 violates C-S.
        IntMoments::from_raw(2, 10, 40, 5, 5);
    }

    #[test]
    fn try_from_raw_rejects_garbage_without_panicking() {
        // Inconsistent second moment.
        assert!(IntMoments::try_from_raw(2, 10, 40, 5, 5).is_err());
        // min > max.
        assert!(IntMoments::try_from_raw(2, 10, 60, 9, 3).is_err());
        // Empty count with nonzero sums.
        assert!(IntMoments::try_from_raw(0, 1, 1, 0, 0).is_err());
        // Values large enough to overflow the consistency check must be
        // rejected as out of range, not wrapped or panicked on.
        assert!(IntMoments::try_from_raw(2, 1 << 127, u128::MAX, 0, 1).is_err());
        assert!(IntMoments::try_from_raw(u64::MAX, 1, u128::MAX, 0, 1).is_err());
    }

    #[test]
    fn constant_sample_zero_variance() {
        let mut m = IntMoments::new();
        for _ in 0..64 {
            m.push(42);
        }
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.summary().std_err(), 0.0);
    }
}
