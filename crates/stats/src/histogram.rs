//! Fixed-width and logarithmic histograms.
//!
//! Used to inspect cover-time distributions (e.g. the bimodality of the
//! barbell cover time for small `k`, where a walk either escapes the first
//! bell quickly or is trapped for Θ(n²) steps).

/// A histogram over `[lo, hi)` with equal-width or log-spaced buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    log_scale: bool,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a linear histogram with `buckets` equal-width bins on `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty ({lo}..{hi})");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            log_scale: false,
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Creates a histogram with log-spaced bucket edges on `[lo, hi)`;
    /// requires `lo > 0`.
    pub fn logarithmic(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0, "log histogram requires lo > 0, got {lo}");
        assert!(hi > lo, "histogram range must be non-empty ({lo}..{hi})");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            log_scale: true,
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.lo {
            return None;
        }
        if x >= self.hi {
            return None;
        }
        let b = self.counts.len() as f64;
        let idx = if self.log_scale {
            let t = (x.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln());
            (t * b) as usize
        } else {
            ((x - self.lo) / (self.hi - self.lo) * b) as usize
        };
        Some(idx.min(self.counts.len() - 1))
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        match self.bucket_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.lo => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[lo, hi)` edges of bucket `i`.
    pub fn bucket_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bucket {i} out of range");
        let b = self.counts.len() as f64;
        if self.log_scale {
            let l = self.lo.ln();
            let h = self.hi.ln();
            let step = (h - l) / b;
            (
                (l + step * i as f64).exp(),
                (l + step * (i + 1) as f64).exp(),
            )
        } else {
            let step = (self.hi - self.lo) / b;
            (self.lo + step * i as f64, self.lo + step * (i + 1) as f64)
        }
    }

    /// Renders a compact ASCII bar chart, one bucket per line.
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bucket_edges(i);
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "[{:>12.2}, {:>12.2}) {:>8} {}\n",
                lo,
                hi,
                c,
                "#".repeat(bar_len)
            ));
        }
        if self.underflow > 0 {
            out.push_str(&format!("underflow: {}\n", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("overflow:  {}\n", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_receive_correct_values() {
        let mut h = Histogram::linear(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.count(i), 1, "bucket {i}");
        }
        assert_eq!(h.total(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::linear(0.0, 1.0, 4);
        h.record(-0.1);
        h.record(1.0); // at upper edge -> overflow
        h.record(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn log_buckets_are_geometric() {
        let h = Histogram::logarithmic(1.0, 1024.0, 10);
        let (lo0, hi0) = h.bucket_edges(0);
        let (lo9, hi9) = h.bucket_edges(9);
        assert!((lo0 - 1.0).abs() < 1e-9);
        assert!((hi9 - 1024.0).abs() < 1e-6);
        // Every bucket spans the same multiplicative factor (2x here).
        assert!((hi0 / lo0 - 2.0).abs() < 1e-9);
        assert!((hi9 / lo9 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn log_bucket_assignment() {
        let mut h = Histogram::logarithmic(1.0, 256.0, 8);
        h.record(1.5); // bucket 0: [1,2)
        h.record(3.0); // bucket 1: [2,4)
        h.record(200.0); // bucket 7: [128,256)
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(7), 1);
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::linear(0.0, 2.0, 2);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert!(s.lines().count() >= 2);
    }

    #[test]
    #[should_panic(expected = "lo > 0")]
    fn log_requires_positive_lo() {
        Histogram::logarithmic(0.0, 10.0, 4);
    }
}
