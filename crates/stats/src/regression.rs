//! Least-squares fits used to verify asymptotic laws.
//!
//! The paper's claims are growth rates: `C(cycle) = Θ(n²)`,
//! `C^k(cycle) ≈ n²/(2 ln k)`, `S^k(grid) = Ω(k)` for small `k`, and so on.
//! We verify them by fitting
//!
//! * a straight line `y = a + b·x` ([`LinearFit`]), and
//! * a power law `y = c·x^e` via OLS in log–log space ([`PowerLawFit`]),
//!
//! over geometric ladders of `n` or `k`, and checking the fitted exponent
//! or slope against the theorem's prediction.

/// Result of an ordinary least-squares line fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

/// Result of a power-law fit `y ≈ coeff · x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Fitted exponent `e`.
    pub exponent: f64,
    /// Fitted coefficient `c`.
    pub coeff: f64,
    /// R² of the underlying log–log linear fit.
    pub r_squared: f64,
}

/// Ordinary least squares on `(x, y)` pairs.
///
/// Panics if fewer than two points or if all `x` are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "all x values identical; slope undefined");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `y = c·x^e` by linear regression on `(ln x, ln y)`.
///
/// All `x` and `y` must be strictly positive.
pub fn power_law_fit(xs: &[f64], ys: &[f64]) -> PowerLawFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    for (&x, &y) in xs.iter().zip(ys) {
        assert!(
            x > 0.0 && y > 0.0,
            "power-law fit needs positive data, got ({x}, {y})"
        );
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let fit = linear_fit(&lx, &ly);
    PowerLawFit {
        exponent: fit.slope,
        coeff: fit.intercept.exp(),
        r_squared: fit.r_squared,
    }
}

/// Fits `y = a + b·ln x` — the model behind the cycle speed-up
/// `S^k = Θ(log k)` (Theorem 6).
pub fn log_fit(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    for &x in xs {
        assert!(x > 0.0, "log fit needs positive x, got {x}");
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    linear_fit(&lx, ys)
}

impl LinearFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

impl PowerLawFit {
    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.coeff * x.powf(self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = linear_fit(&xs, &ys);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_power_law_recovered() {
        let xs: Vec<f64> = (1..=16).map(|i| (i * i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x.powf(2.0)).collect();
        let fit = power_law_fit(&xs, &ys);
        assert!((fit.exponent - 2.0).abs() < 1e-10);
        assert!((fit.coeff - 0.5).abs() < 1e-10);
    }

    #[test]
    fn noisy_quadratic_exponent_near_two() {
        // y = x^2 * (1 + small deterministic wiggle)
        let xs: Vec<f64> = (2..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x * x * (1.0 + 0.05 * ((i as f64).sin())))
            .collect();
        let fit = power_law_fit(&xs, &ys);
        assert!(
            (fit.exponent - 2.0).abs() < 0.1,
            "exponent {} too far from 2",
            fit.exponent
        );
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn log_fit_recovers_log_law() {
        let ks: Vec<f64> = (1..=10).map(|i| (1u64 << i) as f64).collect();
        let ys: Vec<f64> = ks.iter().map(|k| 2.0 + 1.5 * k.ln()).collect();
        let fit = log_fit(&ks, &ys);
        assert!((fit.slope - 1.5).abs() < 1e-10);
        assert!((fit.intercept - 2.0).abs() < 1e-10);
    }

    #[test]
    fn constant_y_has_unit_r_squared_and_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = linear_fit(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn power_law_rejects_nonpositive() {
        power_law_fit(&[1.0, 2.0], &[0.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn vertical_line_rejected() {
        linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }
}
