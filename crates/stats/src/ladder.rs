//! Geometric parameter ladders for experiment sweeps.
//!
//! Asymptotic laws are checked over geometric (not arithmetic) ladders of
//! the problem size `n` and the walk count `k`, so that a log–log fit has
//! evenly spaced abscissae.

/// Powers of two in `[lo, hi]`, e.g. `powers_of_two(4, 64) = [4, 8, 16, 32, 64]`.
pub fn powers_of_two(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo >= 1 && hi >= lo, "invalid range {lo}..={hi}");
    let mut v = Vec::new();
    let mut x = 1u64;
    while x < lo {
        x <<= 1;
    }
    while x <= hi {
        v.push(x);
        if x > hi / 2 {
            break;
        }
        x <<= 1;
    }
    v
}

/// Geometric ladder of `points` values from `lo` to `hi` inclusive,
/// deduplicated after rounding to integers.
pub fn geometric(lo: u64, hi: u64, points: usize) -> Vec<u64> {
    assert!(lo >= 1 && hi >= lo, "invalid range {lo}..={hi}");
    assert!(points >= 2 || lo == hi, "need at least 2 points");
    if lo == hi {
        return vec![lo];
    }
    let llo = (lo as f64).ln();
    let lhi = (hi as f64).ln();
    let mut v: Vec<u64> = (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            (llo + t * (lhi - llo)).exp().round() as u64
        })
        .collect();
    v.dedup();
    v
}

/// Ladder of `k` values for a speed-up sweep on a graph with `n` vertices:
/// powers of two from 1 up to `k_max`, always including 1.
pub fn k_ladder(k_max: u64) -> Vec<u64> {
    assert!(k_max >= 1);
    let mut v = vec![1u64];
    let mut x = 2u64;
    while x <= k_max {
        v.push(x);
        if x > k_max / 2 {
            break;
        }
        x <<= 1;
    }
    v
}

/// Odd geometric ladder (useful for barbell sizes, which must be odd).
pub fn odd_geometric(lo: u64, hi: u64, points: usize) -> Vec<u64> {
    geometric(lo, hi, points)
        .into_iter()
        .map(|x| if x % 2 == 0 { x + 1 } else { x })
        .collect::<Vec<_>>()
        .into_iter()
        .fold(Vec::new(), |mut acc, x| {
            if acc.last() != Some(&x) {
                acc.push(x);
            }
            acc
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_basic() {
        assert_eq!(powers_of_two(4, 64), vec![4, 8, 16, 32, 64]);
        assert_eq!(powers_of_two(1, 1), vec![1]);
        assert_eq!(powers_of_two(3, 9), vec![4, 8]);
    }

    #[test]
    fn powers_of_two_no_overflow_near_max() {
        let v = powers_of_two(1 << 62, u64::MAX);
        assert_eq!(v, vec![1 << 62, 1 << 63]);
    }

    #[test]
    fn geometric_endpoints() {
        let v = geometric(10, 1000, 5);
        assert_eq!(*v.first().unwrap(), 10);
        assert_eq!(*v.last().unwrap(), 1000);
        for w in v.windows(2) {
            assert!(w[1] > w[0], "not strictly increasing: {v:?}");
        }
    }

    #[test]
    fn geometric_degenerate() {
        assert_eq!(geometric(7, 7, 5), vec![7]);
    }

    #[test]
    fn k_ladder_contains_one_and_is_sorted() {
        let v = k_ladder(100);
        assert_eq!(v[0], 1);
        assert_eq!(*v.last().unwrap(), 64);
        for w in v.windows(2) {
            assert!(w[1] == w[0] * 2);
        }
        assert_eq!(k_ladder(1), vec![1]);
    }

    #[test]
    fn odd_ladder_all_odd() {
        for x in odd_geometric(10, 2000, 8) {
            assert_eq!(x % 2, 1, "{x} is even");
        }
    }
}
