//! Harmonic numbers and related elementary asymptotics.
//!
//! Matthews' theorem (Theorem 1 of the paper) bounds the cover time by
//! `hmin·Hn ≤ C(G) ≤ hmax·Hn` where `Hn` is the n-th harmonic number, and
//! the Baby Matthews theorem (Theorem 13) divides the upper bound by `k`.
//! These small closed forms are used all over the bounds module.

/// Euler–Mascheroni constant γ.
pub const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;

/// Exact n-th harmonic number `H_n = Σ_{i=1..n} 1/i`, summed smallest-first
/// for accuracy. `H_0 = 0`.
pub fn harmonic(n: u64) -> f64 {
    let mut acc = 0.0;
    for i in (1..=n).rev() {
        acc += 1.0 / i as f64;
    }
    acc
}

/// Asymptotic approximation `H_n ≈ ln n + γ + 1/(2n) − 1/(12n²)`.
///
/// Accurate to about 1e-8 already for `n ≥ 10`.
pub fn harmonic_approx(n: u64) -> f64 {
    assert!(n > 0, "harmonic_approx needs n ≥ 1");
    let nf = n as f64;
    nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
}

/// `H_n`, exact below a threshold and asymptotic above, so it is cheap for
/// the large `n` used in bounds.
pub fn harmonic_fast(n: u64) -> f64 {
    if n <= 1024 {
        harmonic(n)
    } else {
        harmonic_approx(n)
    }
}

/// Natural log of `n` as f64, panicking on `n = 0` with a useful message.
pub fn ln_u64(n: u64) -> f64 {
    assert!(n > 0, "ln of zero");
    (n as f64).ln()
}

/// Base-2 logarithm of `n` rounded down (position of highest set bit).
pub fn log2_floor(n: u64) -> u32 {
    assert!(n > 0, "log2 of zero");
    63 - n.leading_zeros()
}

/// `⌈log₂ n⌉`.
pub fn log2_ceil(n: u64) -> u32 {
    assert!(n > 0, "log2 of zero");
    if n.is_power_of_two() {
        log2_floor(n)
    } else {
        log2_floor(n) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_exact() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn approx_matches_exact() {
        for n in [10u64, 100, 1000, 10_000] {
            let exact = harmonic(n);
            let approx = harmonic_approx(n);
            assert!(
                (exact - approx).abs() < 1e-6,
                "n={n}: exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn fast_is_continuous_at_threshold() {
        let below = harmonic_fast(1024);
        let above = harmonic_fast(1025);
        assert!(above > below);
        assert!((above - below) < 0.01);
    }

    #[test]
    fn harmonic_is_increasing() {
        let mut prev = 0.0;
        for n in 1..100 {
            let h = harmonic(n);
            assert!(h > prev);
            prev = h;
        }
    }

    #[test]
    fn log2_helpers() {
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(2), 1);
        assert_eq!(log2_floor(3), 1);
        assert_eq!(log2_floor(1024), 10);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
        assert_eq!(log2_ceil(1), 0);
    }

    #[test]
    fn ln_helper() {
        assert!((ln_u64(1)).abs() < 1e-15);
        assert!((ln_u64(64) - 64f64.ln()).abs() < 1e-15);
    }
}
